package serve_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	ftc "repro"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/workload"
)

func openNetwork(t testing.TB, n int, f int, seed int64) *ftc.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := workload.ErdosRenyi(n, 8/float64(n), true, rng)
	edges := make([][2]int, g.M())
	for i, e := range g.Edges {
		edges[i] = [2]int{e.U, e.V}
	}
	nw, err := ftc.Open(n, edges, ftc.WithMaxFaults(f), ftc.WithHeadroom(32))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return nw
}

func dynamicServer(t testing.TB, nw *ftc.Network, cacheSize int) *serve.Server {
	t.Helper()
	return serve.NewDynamic(func() serve.Scheme { return nw.Snapshot() }, nw, cacheSize)
}

func postJSON[T any](t *testing.T, url string, body any) (int, T) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out T
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

// TestHandlerUpdate drives the full generation-aware serving flow: probe →
// update → selective cache sweep → probe again, checking answers against
// the BFS oracle at every generation and that clean cache entries survive
// updates warm while dirty ones are evicted.
func TestHandlerUpdate(t *testing.T) {
	const n, f = 80, 3
	nw := openNetwork(t, n, f, 1)
	srv := dynamicServer(t, nw, 32)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(2))
	probe := func(faults [][2]int, wantHit bool, tag string) {
		g := nw.Snapshot().Graph()
		set := map[int]bool{}
		for _, uv := range faults {
			set[g.EdgeIndex(uv[0], uv[1])] = true
		}
		req := serve.ConnectedRequest{Faults: faults}
		var want []bool
		for q := 0; q < 10; q++ {
			sv, tv := rng.Intn(n), rng.Intn(n)
			req.Pairs = append(req.Pairs, [2]int{sv, tv})
			want = append(want, graph.ConnectedUnder(g, set, sv, tv))
		}
		status, out := postJSON[serve.ConnectedResponse](t, ts.URL+"/connected", req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d", tag, status)
		}
		if out.CacheHit != wantHit {
			t.Fatalf("%s: cache_hit=%v, want %v", tag, out.CacheHit, wantHit)
		}
		if out.Generation != nw.Generation() {
			t.Fatalf("%s: response generation %d, server at %d", tag, out.Generation, nw.Generation())
		}
		for i := range want {
			if out.Connected[i] != want[i] {
				t.Fatalf("%s: pair %d: got %v, want %v", tag, i, out.Connected[i], want[i])
			}
		}
	}

	// A failure event whose edges the updates below never touch.
	snap := nw.Snapshot()
	cleanFaults := [][2]int{}
	for e, tree := range snap.Inner().Forest.IsTreeEdge {
		if tree && len(cleanFaults) < 2 {
			edge := snap.Graph().Edges[e]
			cleanFaults = append(cleanFaults, [2]int{edge.U, edge.V})
		}
	}
	probe(cleanFaults, false, "cold")
	probe(cleanFaults, true, "warm")

	// Insert an edge between two vertices far from the faulted region (any
	// same-component pair works; the sweep decides cleanliness by the
	// actual dirty set).
	g := snap.Graph()
	var add [2]int
	for {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			add = [2]int{u, v}
			break
		}
	}
	status, upd := postJSON[serve.UpdateResponse](t, ts.URL+"/update", serve.UpdateRequest{Add: [][2]int{add}})
	if status != http.StatusOK {
		t.Fatalf("update: status %d", status)
	}
	if upd.Generation != 2 {
		t.Fatalf("update: generation %d, want 2", upd.Generation)
	}
	if !upd.Incremental {
		t.Fatalf("same-component insertion should be incremental (%s)", upd.Reason)
	}
	if upd.CacheEvicted+upd.CacheRebased == 0 {
		t.Fatal("update swept no cache entries despite a warm cache")
	}

	// If the cached event was clean it must still be warm (hit on first
	// probe after the update); if it was dirtied it recompiles (miss).
	probe(cleanFaults, upd.CacheRebased > 0, "post-update")
	probe(cleanFaults, true, "post-update-warm")

	// A malformed update must not commit anything.
	status, _ = postJSON[serve.UpdateResponse](t, ts.URL+"/update", serve.UpdateRequest{Add: [][2]int{add}})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate insertion: status %d, want 422", status)
	}
	if nw.Generation() != 2 {
		t.Fatalf("failed update changed the generation to %d", nw.Generation())
	}

	// Remove one of the cached event's own fault edges: the event's entry
	// must be evicted (the edge is gone), and probing it now 400s.
	status, upd = postJSON[serve.UpdateResponse](t, ts.URL+"/update", serve.UpdateRequest{Remove: [][2]int{cleanFaults[0]}})
	if status != http.StatusOK {
		t.Fatalf("removal update: status %d", status)
	}
	if status, _ := postJSON[serve.ConnectedResponse](t, ts.URL+"/connected",
		serve.ConnectedRequest{Faults: cleanFaults, Pairs: [][2]int{{0, 1}}}); status != http.StatusBadRequest {
		t.Fatalf("probe of removed edge: status %d, want 400", status)
	}

	// Generation pinning: a probe carrying the live generation passes, a
	// probe pinned to a superseded one (whose cached edge indices may have
	// shifted) is rejected with 409.
	okReq := serve.ConnectedRequest{Pairs: [][2]int{{0, 1}}, Generation: nw.Generation()}
	if status, _ := postJSON[serve.ConnectedResponse](t, ts.URL+"/connected", okReq); status != http.StatusOK {
		t.Fatalf("current-generation pin rejected: status %d", status)
	}
	staleReq := serve.ConnectedRequest{Pairs: [][2]int{{0, 1}}, Generation: 1}
	if status, _ := postJSON[serve.ConnectedResponse](t, ts.URL+"/connected", staleReq); status != http.StatusConflict {
		t.Fatalf("stale-generation pin: status %d, want 409", status)
	}

	st := srv.Stats()
	if st.Updates != 2 || st.Generation != nw.Generation() {
		t.Fatalf("stats: %+v", st)
	}
}

// TestStaticServerHasNoUpdateEndpoint: a snapshot-backed server must not
// expose topology mutation.
func TestStaticServerHasNoUpdateEndpoint(t *testing.T) {
	sch := buildScheme(t, 40, 2, 3)
	ts := httptest.NewServer(serve.New(sch, 4).Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/update", "application/json", bytes.NewReader([]byte(`{"add":[[0,5]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("static server accepted an update")
	}
}

// TestUpdateChurnRace is the serving layer's concurrency gate (run under
// -race in CI): batch probes flow continuously while /update commits
// topology batches. Every probe must succeed and answer correctly for the
// generation it reports — the stale-retry path makes races invisible to
// clients.
func TestUpdateChurnRace(t *testing.T) {
	const (
		n, f       = 120, 3
		probers    = 8
		iters      = 40
		updates    = 25
		churnBase  = 60 // updates only touch vertices >= churnBase
		probeEdges = 2
	)
	nw := openNetwork(t, n, f, 7)
	srv := dynamicServer(t, nw, 8)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// gen → graph at that generation, for oracle checks of racing probes.
	var genMu sync.Mutex
	gens := map[uint64]*graph.Graph{1: nw.Snapshot().Graph()}
	graphAt := func(gen uint64) *graph.Graph {
		deadline := time.Now().Add(2 * time.Second)
		for {
			genMu.Lock()
			g := gens[gen]
			genMu.Unlock()
			if g != nil || time.Now().After(deadline) {
				return g
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Fault edges the updater never touches (both endpoints < churnBase).
	g0 := nw.Snapshot().Graph()
	var stableFaults [][2]int
	for _, e := range g0.Edges {
		if e.U < churnBase && e.V < churnBase && len(stableFaults) < probeEdges {
			stableFaults = append(stableFaults, [2]int{e.U, e.V})
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, probers+1)
	stop := make(chan struct{})
	for w := 0; w < probers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			prng := rand.New(rand.NewSource(int64(1000 + worker)))
			for it := 0; it < iters; it++ {
				req := serve.ConnectedRequest{Faults: stableFaults}
				for q := 0; q < 4; q++ {
					req.Pairs = append(req.Pairs, [2]int{prng.Intn(n), prng.Intn(n)})
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/connected", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var out serve.ConnectedResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				code := resp.StatusCode
				resp.Body.Close()
				if err != nil || code != http.StatusOK {
					errc <- fmt.Errorf("worker %d: status %d err %v", worker, code, err)
					return
				}
				gg := graphAt(out.Generation)
				if gg == nil {
					errc <- fmt.Errorf("worker %d: unknown generation %d", worker, out.Generation)
					return
				}
				set := map[int]bool{}
				for _, uv := range stableFaults {
					set[gg.EdgeIndex(uv[0], uv[1])] = true
				}
				for i, p := range req.Pairs {
					if want := graph.ConnectedUnder(gg, set, p[0], p[1]); out.Connected[i] != want {
						errc <- fmt.Errorf("worker %d: gen %d pair %v: got %v, want %v",
							worker, out.Generation, p, out.Connected[i], want)
						return
					}
				}
			}
		}(w)
	}

	// The updater toggles edges among the churn region, half incremental
	// inserts/deletes, occasionally forcing rebuild fallbacks.
	urng := rand.New(rand.NewSource(99))
	for i := 0; i < updates; i++ {
		cur := nw.Snapshot().Graph()
		var req serve.UpdateRequest
		for try := 0; try < 100 && len(req.Add) == 0; try++ {
			u := churnBase + urng.Intn(n-churnBase)
			v := churnBase + urng.Intn(n-churnBase)
			if u != v && !cur.HasEdge(u, v) {
				req.Add = [][2]int{{u, v}}
			}
		}
		if i%3 == 2 {
			for try := 0; try < 100 && len(req.Remove) == 0; try++ {
				e := urng.Intn(cur.M())
				edge := cur.Edges[e]
				if edge.U >= churnBase && edge.V >= churnBase {
					req.Remove = [][2]int{{edge.U, edge.V}}
				}
			}
		}
		if len(req.Add) == 0 && len(req.Remove) == 0 {
			continue
		}
		next := cur.Clone()
		for _, uv := range req.Add {
			if _, err := next.AddEdge(uv[0], uv[1]); err != nil {
				t.Fatal(err)
			}
		}
		for _, uv := range req.Remove {
			if _, err := next.RemoveEdge(uv[0], uv[1]); err != nil {
				t.Fatal(err)
			}
		}
		status, out := postJSON[serve.UpdateResponse](t, ts.URL+"/update", req)
		if status != http.StatusOK {
			t.Fatalf("update %d: status %d", i, status)
		}
		genMu.Lock()
		gens[out.Generation] = next
		genMu.Unlock()
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Updates == 0 || st.Probes == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
}

// TestShardedCacheChurnRace is the sharded-cache concurrency gate (run
// under -race in CI): many distinct failure events — spread across cache
// shards — are probed concurrently over both the HTTP handler and the raw
// FaultSet path while /update commits churn the topology, so per-shard
// sweeps, cross-shard rebase evictions, singleflight compiles, and the
// stale-probe retry all interleave. HTTP answers are oracle-checked per
// generation; raw probes assert that the only error a racing client can
// ever see is ErrStaleLabel.
func TestShardedCacheChurnRace(t *testing.T) {
	const (
		n, f      = 160, 3
		events    = 12
		probers   = 10
		iters     = 30
		updates   = 15
		churnBase = 100 // updates only touch vertices >= churnBase
	)
	nw := openNetwork(t, n, f, 21)
	srv := serve.NewDynamicWithShards(func() serve.Scheme { return nw.Snapshot() }, nw, 64, 8)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var genMu sync.Mutex
	gens := map[uint64]*graph.Graph{1: nw.Snapshot().Graph()}
	graphAt := func(gen uint64) *graph.Graph {
		deadline := time.Now().Add(2 * time.Second)
		for {
			genMu.Lock()
			g := gens[gen]
			genMu.Unlock()
			if g != nil || time.Now().After(deadline) {
				return g
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Distinct stable failure events (edges entirely below churnBase), so
	// their cache entries spread across shards and survive updates warm.
	g0 := nw.Snapshot().Graph()
	var stable [][2]int
	for _, e := range g0.Edges {
		if e.U < churnBase && e.V < churnBase {
			stable = append(stable, [2]int{e.U, e.V})
		}
	}
	if len(stable) < events+f {
		t.Fatalf("only %d stable edges, need %d", len(stable), events+f)
	}
	faultSets := make([][][2]int, events)
	for i := range faultSets {
		faultSets[i] = stable[i : i+f]
	}

	var wg sync.WaitGroup
	errc := make(chan error, probers)
	for w := 0; w < probers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			prng := rand.New(rand.NewSource(int64(2000 + worker)))
			for it := 0; it < iters; it++ {
				ev := prng.Intn(events)
				if worker%3 == 2 {
					// A third of the load exercises the raw FaultSet path,
					// which surfaces cache races directly (callers own the
					// stale retry there).
					snap := nw.Snapshot()
					edges := make([]int, 0, f)
					g := snap.Graph()
					ok := true
					for _, uv := range faultSets[ev] {
						e := g.EdgeIndex(uv[0], uv[1])
						if e < 0 {
							ok = false
							break
						}
						edges = append(edges, e)
					}
					if !ok {
						continue // raced a commit mid-resolution; next iter
					}
					fs, _, err := srv.FaultSet(edges)
					if err != nil {
						if errors.Is(err, ftc.ErrStaleLabel) {
							continue
						}
						errc <- fmt.Errorf("worker %d: FaultSet: %w", worker, err)
						return
					}
					sv, tv := prng.Intn(n), prng.Intn(n)
					if _, err := fs.Connected(snap.VertexLabel(sv), snap.VertexLabel(tv)); err != nil && !errors.Is(err, ftc.ErrStaleLabel) {
						errc <- fmt.Errorf("worker %d: probe: %w", worker, err)
						return
					}
					continue
				}
				req := serve.ConnectedRequest{Faults: faultSets[ev]}
				for q := 0; q < 4; q++ {
					req.Pairs = append(req.Pairs, [2]int{prng.Intn(n), prng.Intn(n)})
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/connected", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var out serve.ConnectedResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				code := resp.StatusCode
				resp.Body.Close()
				if err != nil || code != http.StatusOK {
					errc <- fmt.Errorf("worker %d: status %d err %v", worker, code, err)
					return
				}
				gg := graphAt(out.Generation)
				if gg == nil {
					errc <- fmt.Errorf("worker %d: unknown generation %d", worker, out.Generation)
					return
				}
				set := map[int]bool{}
				for _, uv := range faultSets[ev] {
					set[gg.EdgeIndex(uv[0], uv[1])] = true
				}
				for i, p := range req.Pairs {
					if want := graph.ConnectedUnder(gg, set, p[0], p[1]); out.Connected[i] != want {
						errc <- fmt.Errorf("worker %d: gen %d event %d pair %v: got %v, want %v",
							worker, out.Generation, ev, p, out.Connected[i], want)
						return
					}
				}
			}
		}(w)
	}

	urng := rand.New(rand.NewSource(77))
	for i := 0; i < updates; i++ {
		cur := nw.Snapshot().Graph()
		var req serve.UpdateRequest
		for try := 0; try < 200 && len(req.Add) == 0; try++ {
			u := churnBase + urng.Intn(n-churnBase)
			v := churnBase + urng.Intn(n-churnBase)
			if u != v && !cur.HasEdge(u, v) {
				req.Add = [][2]int{{u, v}}
			}
		}
		if len(req.Add) == 0 {
			continue
		}
		next := cur.Clone()
		for _, uv := range req.Add {
			if _, err := next.AddEdge(uv[0], uv[1]); err != nil {
				t.Fatal(err)
			}
		}
		status, out := postJSON[serve.UpdateResponse](t, ts.URL+"/update", req)
		if status != http.StatusOK {
			t.Fatalf("update %d: status %d", i, status)
		}
		genMu.Lock()
		gens[out.Generation] = next
		genMu.Unlock()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := srv.Stats()
	if len(st.CacheShards) != 8 {
		t.Fatalf("expected 8 shards in stats, got %d", len(st.CacheShards))
	}
	var spread int
	for _, sh := range st.CacheShards {
		if sh.Size > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("all cache entries landed in %d shard(s); churn test is not exercising sharding", spread)
	}
}
