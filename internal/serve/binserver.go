package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/serve/wire"
)

// The binary protocol surface: the same Server that answers JSON over
// HTTP also accepts persistent framed connections (wire package), sharing
// the sharded fault-set cache, the generation-aware retry, and the update
// path. One connection is one goroutine reading frames in order and
// writing responses in the same order — which is what lets clients
// pipeline: responses match requests FIFO, so a client may keep any
// number of batches in flight per connection.
//
// The frame hot path allocates nothing at steady state: the wire.Reader
// peeks frames zero-copy out of the connection buffer, DecodeProbe
// refills a per-connection FrameScratch in place (computing the cache key
// incrementally from the canonical on-the-wire fault edges), the probe
// rides the same compiled-FaultSet path as HTTP, and the response is
// encoded into a reused buffer and handed to a buffered writer that only
// flushes when the inbound queue is drained (so a pipelined burst of k
// frames costs one syscall pair, not k).

// binFlushEvery bounds how many responses may accumulate before a flush
// even while requests keep arriving, so one greedy pipelining client
// cannot defer its own responses indefinitely behind a saturated reader.
const binFlushEvery = 64

// FrameScratch is the reusable per-connection (or per-benchmark) state of
// the binary probe path: the decoded request, the answer slice, and the
// response encode buffer. A zero value is usable; reuse across calls is
// what makes HandleFrame allocation-free at steady state.
type FrameScratch struct {
	req   wire.ProbeReq
	out   []bool
	reach []bool
	paths [][]int
	resp  []byte
}

// HandleFrame processes one frame payload against the server: decode,
// probe (with the same one-retry ErrStaleLabel semantics as the HTTP
// handler), encode. The returned response bytes alias sc.resp and are
// valid until the next call with the same scratch. fatal reports a
// protocol violation after which the connection must be closed (the
// response, if any, should still be written first). It is exported so
// benchmarks and fuzzers can drive the exact serving path without a
// socket.
func (s *Server) HandleFrame(sc *FrameScratch, op byte, payload []byte) (resp []byte, fatal bool) {
	s.binRequests.Add(1)
	// Decode per opcode; the three request frames share one payload layout
	// but differ in cache-key namespace (DecodeVProbe hashes with the
	// vertex seed) and in what the fault indices mean.
	var decErr error
	var once func(*Server, *FrameScratch) (uint16, error)
	var counter *atomic.Uint64
	switch op {
	case wire.OpProbe:
		decErr = wire.DecodeProbe(payload, &sc.req)
		once = (*Server).probeFrameOnce
		counter = &s.probes
	case wire.OpRoute:
		decErr = wire.DecodeRoute(payload, &sc.req)
		once = (*Server).routeFrameOnce
		counter = &s.routePlans
	case wire.OpVProbe:
		decErr = wire.DecodeVProbe(payload, &sc.req)
		once = (*Server).vprobeFrameOnce
		counter = &s.vprobes
	default:
		s.frameErrors.Add(1)
		sc.resp = wire.AppendError(sc.resp[:0], 0, wire.CodeBadRequest, fmt.Sprintf("unknown opcode 0x%02x", op))
		return sc.resp, true
	}
	if decErr != nil {
		s.frameErrors.Add(1)
		sc.resp = wire.AppendError(sc.resp[:0], sc.req.ID, wire.CodeBadRequest, decErr.Error())
		return sc.resp, true
	}
	// Same race rule as the HTTP path: a probe that straddles a commit can
	// observe two generations and fails fast with ErrStaleLabel; one retry
	// against a fresh snapshot settles it.
	for attempt := 0; ; attempt++ {
		code, err := once(s, sc)
		if err != nil && errors.Is(err, core.ErrStaleLabel) && attempt == 0 {
			continue
		}
		if err != nil {
			sc.resp = wire.AppendError(sc.resp[:0], sc.req.ID, code, err.Error())
			return sc.resp, false
		}
		counter.Add(uint64(len(sc.req.Pairs)))
		return sc.resp, false
	}
}

// probeFrameOnce answers one decoded probe frame against one consistent
// snapshot, encoding the response into sc.resp. The fault edges arrived
// canonical (wire.DecodeProbe enforces strictly ascending) with the cache
// key already computed, so this is one cache stab and a batch of
// zero-alloc probes.
func (s *Server) probeFrameOnce(sc *FrameScratch) (uint16, error) {
	sch := s.view()
	n := sch.Graph().N()
	if sc.req.GenPin != 0 && sc.req.GenPin != sch.Generation() {
		return wire.CodeConflict, fmt.Errorf("request pinned to generation %d, server at %d (edge indices may have shifted)",
			sc.req.GenPin, sch.Generation())
	}
	for _, p := range sc.req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return wire.CodeBadRequest, fmt.Errorf("vertex pair (%d,%d) out of range (n=%d)", p[0], p[1], n)
		}
	}
	fs, hit, err := s.faultSetCanonKey(sch, sc.req.Faults, sc.req.Key)
	if err != nil {
		code := wire.CodeUnprocessable
		if errors.Is(err, core.ErrDecode) {
			code = wire.CodeInternal
		}
		if errors.Is(err, core.ErrStaleLabel) {
			code = wire.CodeConflict
		}
		return code, err
	}
	sc.out = sc.out[:0]
	for i, p := range sc.req.Pairs {
		ok, err := fs.Connected(sch.VertexLabel(p[0]), sch.VertexLabel(p[1]))
		if err != nil {
			code := wire.CodeInternal
			if errors.Is(err, core.ErrStaleLabel) {
				code = wire.CodeConflict
			}
			return code, fmt.Errorf("pair %d: %w", i, err)
		}
		sc.out = append(sc.out, ok)
	}
	sc.resp = wire.AppendProbeResp(sc.resp[:0], sc.req.ID, hit, sch.Generation(), fs.Faults(), sc.out)
	return 0, nil
}

// ServeBin accepts framed-protocol connections until the listener is
// closed, serving each connection on its own goroutine. It returns nil
// once the listener reports closure (net.ErrClosed), any other accept
// error otherwise. Pair it with ShutdownBin for a graceful stop.
func (s *Server) ServeBin(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveBinConn(conn)
	}
}

// registerBinConn tracks a live connection so ShutdownBin can wake and
// close it; reports false when the server is already draining.
func (s *Server) registerBinConn(conn net.Conn) bool {
	s.binMu.Lock()
	defer s.binMu.Unlock()
	if s.binDraining {
		return false
	}
	if s.binOpen == nil {
		s.binOpen = make(map[net.Conn]struct{})
	}
	s.binOpen[conn] = struct{}{}
	return true
}

func (s *Server) unregisterBinConn(conn net.Conn) {
	s.binMu.Lock()
	delete(s.binOpen, conn)
	s.binMu.Unlock()
}

func (s *Server) binIsDraining() bool {
	s.binMu.Lock()
	defer s.binMu.Unlock()
	return s.binDraining
}

// ShutdownBin gracefully stops the framed-protocol side: new connections
// are refused, existing connections finish the frames already in flight
// (their read loops are woken via a read deadline, flush buffered
// responses, and exit), and any connection still open when ctx expires is
// force-closed. The caller is responsible for closing the listener first
// so ServeBin stops accepting.
func (s *Server) ShutdownBin(ctx context.Context) {
	s.binMu.Lock()
	s.binDraining = true
	for conn := range s.binOpen {
		// Wake blocked reads; the conn loop sees the draining flag, flushes,
		// and closes cleanly.
		_ = conn.SetReadDeadline(time.Now())
	}
	s.binMu.Unlock()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.binMu.Lock()
		open := len(s.binOpen)
		s.binMu.Unlock()
		if open == 0 {
			return
		}
		select {
		case <-ctx.Done():
			s.binMu.Lock()
			for conn := range s.binOpen {
				_ = conn.Close()
			}
			s.binMu.Unlock()
			return
		case <-tick.C:
		}
	}
}

// logSubPollInterval bounds how long a quiescent OpLogSub connection goes
// between liveness/draining checks.
const logSubPollInterval = 100 * time.Millisecond

// streamLog serves one OpLogSub subscription: backlog records after the
// subscriber's generation, then live records as commits append them. The
// loop wakes on the append hub (coalesced — a wakeup means "re-scan the
// log", so a slow subscriber batches however many records accumulated) and
// polls for draining and subscriber hangup in between.
func (s *Server) streamLog(conn net.Conn, bw *bufio.Writer, payload []byte) {
	fail := func(code uint16, msg string) {
		resp := wire.AppendError(nil, 0, code, msg)
		_, _ = bw.Write(resp)
		_ = bw.Flush()
	}
	afterGen, err := wire.DecodeLogSub(payload)
	if err != nil {
		s.frameErrors.Add(1)
		fail(wire.CodeBadRequest, err.Error())
		return
	}
	if s.genlog == nil {
		fail(wire.CodeBadRequest, "no generation log attached (not a primary)")
		return
	}
	ch, cancel := s.subscribeLog()
	defer cancel()
	cur := afterGen
	var frame []byte
	var peek [1]byte
	for {
		recs, ok := s.genlog.After(cur)
		if !ok {
			// The log no longer covers the subscriber's generation: it
			// must bootstrap from a snapshot instead.
			fail(wire.CodeGone, fmt.Sprintf("generation log starts after %d; refetch a snapshot", cur))
			return
		}
		for _, rec := range recs {
			frame = wire.AppendLogRecord(frame[:0], rec.Payload)
			if _, err := bw.Write(frame); err != nil {
				return
			}
			cur = rec.Gen
		}
		if err := bw.Flush(); err != nil {
			return
		}
		select {
		case <-ch:
		case <-time.After(logSubPollInterval):
			// Idle: check the subscriber is still there. Replicas never
			// send after OpLogSub, so a successful read is a protocol
			// violation and any error other than a timeout is a hangup.
			_ = conn.SetReadDeadline(time.Now().Add(time.Millisecond))
			if _, err := conn.Read(peek[:]); err == nil {
				return
			} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
				return
			}
			_ = conn.SetReadDeadline(time.Time{})
		}
		if s.binIsDraining() {
			return
		}
	}
}

// binScratchPool recycles per-connection scratch across connection churn.
var binScratchPool = sync.Pool{New: func() any { return &FrameScratch{} }}

// binReqID extracts the request ID from a probe-like payload without a
// full decode, so shed responses still correlate FIFO with their request.
func binReqID(payload []byte) uint64 {
	if len(payload) >= 8 {
		return binary.LittleEndian.Uint64(payload)
	}
	return 0
}

// binReqBudgetMS extracts the deadline budget (milliseconds, 0 = none)
// from a probe-like payload without a full decode, so an already-expired
// frame is shed before any per-frame work.
func binReqBudgetMS(op byte, payload []byte) uint32 {
	switch op {
	case wire.OpProbe, wire.OpRoute, wire.OpVProbe:
	default:
		return 0
	}
	if len(payload) < 28 {
		return 0
	}
	return binary.LittleEndian.Uint32(payload[24:28])
}

// serveBinConn runs one framed connection: handshake, then the frame
// loop. Responses are flushed when the inbound buffer drains (or every
// binFlushEvery frames), so pipelined bursts amortize syscalls.
func (s *Server) serveBinConn(conn net.Conn) {
	// Failpoints "binserver.conn.read"/".write": injected connection
	// faults on the server side of the wire, indistinguishable to the
	// peer from a genuine reset.
	conn = faultinject.WrapConn("binserver.conn", conn)
	defer conn.Close()
	if !s.registerBinConn(conn) {
		return
	}
	defer s.unregisterBinConn(conn)
	s.binConns.Add(1)
	defer s.binConns.Add(-1)

	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var hello [wire.ClientHelloLen]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return
	}
	if err := wire.ParseClientHello(hello[:]); err != nil {
		s.frameErrors.Add(1)
		return
	}
	if _, err := bw.Write(wire.AppendServerHello(nil, s.view().Generation())); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	rd := wire.NewReader(br)
	sc := binScratchPool.Get().(*FrameScratch)
	defer binScratchPool.Put(sc)
	unflushed := 0
	// lastIdle marks the last instant this connection's inbound buffer was
	// observed empty: a frame's queueing delay is bounded below by
	// time.Since(lastIdle), which a deadline budget is checked against. An
	// idle connection never falsely sheds — blocking in Next with an empty
	// buffer re-stamps lastIdle when the frame arrives.
	lastIdle := time.Now()
	for {
		if s.binIsDraining() {
			_ = bw.Flush()
			return
		}
		idle := rd.Buffered() == 0
		op, payload, err := rd.Next()
		if idle {
			lastIdle = time.Now()
		}
		if err != nil {
			// EOF, peer reset, or a deadline poke from ShutdownBin: flush
			// whatever was answered and drop the connection. Framing errors
			// (oversized/corrupt length) are counted — they are the protocol
			// analog of the HTTP 400 path.
			if errors.Is(err, wire.ErrFrame) {
				s.frameErrors.Add(1)
			}
			_ = bw.Flush()
			return
		}
		if op == wire.OpLogSub {
			// The connection switches to push mode: stream generation-log
			// records until the subscriber hangs up or the server drains.
			s.binRequests.Add(1)
			s.streamLog(conn, bw, payload)
			return
		}
		inflight := s.binInflight.Add(1)
		var resp []byte
		var fatal bool
		// Admission gate: shed (never queue unboundedly) when the server
		// is over its in-flight cap, when this connection's pipelined
		// backlog exceeds its byte bound, or when the frame's deadline
		// budget was already spent queueing. Shed responses keep FIFO
		// order and the connection stays up — the client retries elsewhere.
		if max := s.admitMax.Load(); max > 0 && inflight+s.httpInflight.Load() > max {
			s.shedBin.Add(1)
			sc.resp = wire.AppendError(sc.resp[:0], binReqID(payload), wire.CodeUnavailable, "overloaded: probe shed, retry later")
			resp = sc.resp
		} else if qmax := s.connQueueMax.Load(); qmax > 0 && int64(rd.Buffered()) > qmax {
			s.shedBin.Add(1)
			sc.resp = wire.AppendError(sc.resp[:0], binReqID(payload), wire.CodeUnavailable, "connection queue over limit: probe shed")
			resp = sc.resp
		} else if b := binReqBudgetMS(op, payload); b > 0 && time.Since(lastIdle) > time.Duration(b)*time.Millisecond {
			s.shedDeadline.Add(1)
			sc.resp = wire.AppendError(sc.resp[:0], binReqID(payload), wire.CodeUnavailable, "deadline budget exhausted before service")
			resp = sc.resp
		} else if ferr := faultinject.Fire("binserver.handle"); ferr != nil {
			// Failpoint "binserver.handle": a slow or failing server —
			// latency here holds the admission slot and queues the
			// pipeline, which is how deadline/overload tests make
			// shedding deterministic.
			sc.resp = wire.AppendError(sc.resp[:0], binReqID(payload), wire.CodeInternal, ferr.Error())
			resp = sc.resp
		} else {
			resp, fatal = s.HandleFrame(sc, op, payload)
		}
		_, werr := bw.Write(resp)
		s.binInflight.Add(-1)
		if werr != nil || fatal {
			_ = bw.Flush()
			return
		}
		unflushed++
		if rd.Buffered() == 0 || unflushed >= binFlushEvery {
			if err := bw.Flush(); err != nil {
				return
			}
			unflushed = 0
		}
	}
}
