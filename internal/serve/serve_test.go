package serve_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	ftc "repro"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/workload"
)

func buildScheme(t testing.TB, n int, f int, seed int64) *ftc.Scheme {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := workload.ErdosRenyi(n, 8/float64(n), true, rng)
	s, err := ftc.NewFromGraph(g, ftc.WithMaxFaults(f))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

func postConnected(t *testing.T, url string, req serve.ConnectedRequest) (*http.Response, serve.ConnectedResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/connected", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.ConnectedResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestHandlerConnected(t *testing.T) {
	const n, f = 80, 3
	sch := buildScheme(t, n, f, 1)
	g := sch.Graph()
	srv := serve.New(sch, 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		faults := workload.TreeEdgeFaults(g, sch.Inner().Forest, 1+rng.Intn(f), rng)
		req := serve.ConnectedRequest{}
		set := map[int]bool{}
		for i, e := range faults {
			set[e] = true
			// Exercise both client-side fault encodings.
			if i%2 == 0 {
				req.Faults = append(req.Faults, [2]int{g.Edges[e].U, g.Edges[e].V})
			} else {
				req.FaultEdges = append(req.FaultEdges, e)
			}
		}
		var want []bool
		for q := 0; q < 8; q++ {
			sv, tv := rng.Intn(n), rng.Intn(n)
			req.Pairs = append(req.Pairs, [2]int{sv, tv})
			want = append(want, graph.ConnectedUnder(g, set, sv, tv))
		}
		resp, out := postConnected(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d: status %d", trial, resp.StatusCode)
		}
		if len(out.Connected) != len(want) {
			t.Fatalf("trial %d: got %d answers, want %d", trial, len(out.Connected), len(want))
		}
		for i := range want {
			if out.Connected[i] != want[i] {
				t.Fatalf("trial %d pair %d: got %v, want %v", trial, i, out.Connected[i], want[i])
			}
		}
		// The same failure event probed again must hit the cache.
		resp2, out2 := postConnected(t, ts.URL, req)
		if resp2.StatusCode != http.StatusOK || !out2.CacheHit {
			t.Fatalf("trial %d: repeat probe missed the cache (status %d, hit %v)",
				trial, resp2.StatusCode, out2.CacheHit)
		}
	}

	st := srv.Stats()
	if st.CacheHits == 0 || st.CacheMisses == 0 || st.Probes == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
}

func TestHandlerErrors(t *testing.T) {
	sch := buildScheme(t, 40, 2, 3)
	ts := httptest.NewServer(serve.New(sch, 4).Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name   string
		req    serve.ConnectedRequest
		status int
	}{
		{"unknown edge", serve.ConnectedRequest{Faults: [][2]int{{0, 0}}, Pairs: [][2]int{{0, 1}}}, http.StatusBadRequest},
		{"vertex out of range", serve.ConnectedRequest{Pairs: [][2]int{{0, 4000}}}, http.StatusBadRequest},
		{"fault index out of range", serve.ConnectedRequest{FaultEdges: []int{1 << 20}, Pairs: [][2]int{{0, 1}}}, http.StatusUnprocessableEntity},
		{"over fault budget", serve.ConnectedRequest{FaultEdges: []int{0, 1, 2, 3, 4}, Pairs: [][2]int{{0, 1}}}, http.StatusUnprocessableEntity},
	} {
		body, _ := json.Marshal(tc.req)
		resp, err := http.Post(ts.URL+"/connected", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}

	resp, err := http.Post(ts.URL+"/connected", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	var hz serve.Healthz
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.N != 40 || hz.MaxFaults != 2 {
		t.Errorf("healthz: %+v", hz)
	}
}

// TestInvalidFaultSetsDoNotPolluteCache: malformed failure events (over
// budget, out of range) must be rejected before the LRU is touched, so a
// stream of bad requests can never evict compiled valid fault sets.
func TestInvalidFaultSetsDoNotPolluteCache(t *testing.T) {
	sch := buildScheme(t, 40, 2, 9)
	srv := serve.New(sch, 2)
	if _, _, err := srv.FaultSet([]int{0, 1}); err != nil {
		t.Fatalf("valid fault set: %v", err)
	}
	if _, _, err := srv.FaultSet([]int{0, 1, 2}); !errors.Is(err, ftc.ErrTooManyFaults) {
		t.Fatalf("over-budget fault set: got %v, want ErrTooManyFaults", err)
	}
	if _, _, err := srv.FaultSet([]int{sch.M() + 5}); err == nil {
		t.Fatal("out-of-range fault edge accepted")
	}
	// Duplicates of one edge collapse below the budget and stay valid.
	if _, _, err := srv.FaultSet([]int{3, 3, 3}); err != nil {
		t.Fatalf("duplicated single fault: %v", err)
	}
	st := srv.Stats()
	if st.CacheSize != 2 || st.CacheMisses != 2 {
		t.Fatalf("invalid events touched the cache: %+v", st)
	}
	if _, hit, err := srv.FaultSet([]int{1, 0, 0}); err != nil || !hit {
		t.Fatalf("canonicalized valid event no longer cached (hit=%v err=%v)", hit, err)
	}
}

// TestFaultSetLRUConcurrent hammers the FaultSet cache from many goroutines
// with overlapping failure events and a deliberately tiny capacity, so that
// hits, misses, evictions, recompiles, and shared sync.Once compilations all
// interleave. Run under -race in CI; every answer is checked against the
// BFS oracle.
func TestFaultSetLRUConcurrent(t *testing.T) {
	const (
		n          = 150
		f          = 3
		events     = 10
		cacheCap   = 3 // far fewer than events: constant eviction churn
		goroutines = 12
		iters      = 60
	)
	sch := buildScheme(t, n, f, 5)
	g := sch.Graph()
	srv := serve.New(sch, cacheCap)

	// Overlapping failure events: consecutive events share edges, so
	// distinct cache keys probe shared FaultSet internals.
	rng := rand.New(rand.NewSource(6))
	base := workload.TreeEdgeFaults(g, sch.Inner().Forest, events+f, rng)
	faultSets := make([][]int, events)
	oracle := make([]map[int]bool, events)
	for i := range faultSets {
		faultSets[i] = append([]int(nil), base[i:i+f]...)
		oracle[i] = workload.FaultSet(faultSets[i])
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + worker)))
			for it := 0; it < iters; it++ {
				ev := wrng.Intn(events)
				sv, tv := wrng.Intn(n), wrng.Intn(n)
				want := graph.ConnectedUnder(g, oracle[ev], sv, tv)
				if worker%4 == 0 {
					// A quarter of the load arrives over HTTP.
					body, _ := json.Marshal(serve.ConnectedRequest{
						FaultEdges: faultSets[ev],
						Pairs:      [][2]int{{sv, tv}},
					})
					resp, err := http.Post(ts.URL+"/connected", "application/json", bytes.NewReader(body))
					if err != nil {
						errc <- err
						return
					}
					var out serve.ConnectedResponse
					err = json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if err != nil {
						errc <- err
						return
					}
					if len(out.Connected) != 1 || out.Connected[0] != want {
						errc <- fmt.Errorf("worker %d: http probe event %d (%d,%d): got %v, want %v",
							worker, ev, sv, tv, out.Connected, want)
						return
					}
					continue
				}
				fs, _, err := srv.FaultSet(faultSets[ev])
				if err != nil {
					errc <- fmt.Errorf("worker %d: FaultSet: %w", worker, err)
					return
				}
				got, err := fs.Connected(sch.VertexLabel(sv), sch.VertexLabel(tv))
				if err != nil {
					errc <- fmt.Errorf("worker %d: probe: %w", worker, err)
					return
				}
				if got != want {
					errc <- fmt.Errorf("worker %d: event %d (%d,%d): got %v, want %v",
						worker, ev, sv, tv, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.CacheSize > cacheCap {
		t.Fatalf("cache grew past capacity: %+v", st)
	}
	if st.CacheMisses < uint64(events) {
		t.Fatalf("expected at least one miss per event: %+v", st)
	}
}
