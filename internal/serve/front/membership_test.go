package front_test

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve/front"
	"repro/internal/serve/wire"
	"repro/internal/serve/wireclient"
)

// flakyProxy fronts one backend with a kill switch: while down, new
// connections are reset on accept and live ones are severed — the
// transport signature of a crashed replica. The listener itself stays up,
// so the same address serves both the outage and the recovery.
type flakyProxy struct {
	backend string
	ln      net.Listener
	mu      sync.Mutex
	down    bool
	conns   map[net.Conn]struct{}
}

func newFlakyProxy(t *testing.T, backend string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &flakyProxy{backend: backend, ln: ln, conns: make(map[net.Conn]struct{})}
	t.Cleanup(func() { ln.Close(); p.setDown(true) })
	go p.loop()
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

func (p *flakyProxy) loop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.down {
			p.mu.Unlock()
			c.Close()
			continue
		}
		up, err := net.Dial("tcp", p.backend)
		if err != nil {
			p.mu.Unlock()
			c.Close()
			continue
		}
		p.conns[c] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		go func() { io.Copy(up, c); up.Close(); c.Close() }()
		go func() { io.Copy(c, up); c.Close(); up.Close() }()
	}
}

func (p *flakyProxy) setDown(down bool) {
	p.mu.Lock()
	p.down = down
	if down {
		for c := range p.conns {
			c.Close()
		}
		p.conns = make(map[net.Conn]struct{})
	}
	p.mu.Unlock()
}

// TestAllEjectedFailsFastThenReadmits kills every backend, waits for the
// breaker to eject them, and asserts (a) probes fail immediately with
// ErrNoBackends instead of hanging on hedge timers, and (b) after the
// backends come back, probation probes readmit them and the SAME Front —
// no redial — serves again.
func TestAllEjectedFailsFastThenReadmits(t *testing.T) {
	sch := staticScheme(t)
	a1, _ := startBinServer(t, sch)
	a2, _ := startBinServer(t, sch)
	p1, p2 := newFlakyProxy(t, a1), newFlakyProxy(t, a2)

	f, err := front.Dial([]string{p1.addr(), p2.addr()}, front.Options{
		NoHedge:       true,
		FailThreshold: 1,
		Probation:     300 * time.Millisecond,
		ReconnectBase: 5 * time.Millisecond,
		ReconnectMax:  40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	pairs := [][2]int{{0, 5}}
	if _, _, err := f.ConnectedBatch(nil, pairs); err != nil {
		t.Fatalf("warm probe: %v", err)
	}

	p1.setDown(true)
	p2.setDown(true)
	// Drive the breaker: with FailThreshold 1, one failing probe chain
	// ejects every backend it touches.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, err := f.ConnectedBatch(nil, pairs)
		if err == nil {
			if time.Now().After(deadline) {
				t.Fatal("probes kept succeeding after both backends died")
			}
			continue
		}
		if errors.Is(err, front.ErrNoBackends) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached ErrNoBackends; last err: %v", err)
		}
	}
	if st := f.Stats(); st.Ejections < 2 {
		t.Fatalf("ejections = %d, want >= 2", st.Ejections)
	}
	// Fail-fast: with everything ejected and inside probation, a probe
	// must return without waiting on hedge or reconnect timers.
	start := time.Now()
	if _, _, err := f.ConnectedBatch(nil, pairs); !errors.Is(err, front.ErrNoBackends) {
		t.Fatalf("all-ejected probe: %v, want ErrNoBackends", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("all-ejected probe took %v, want immediate", d)
	}
	for _, b := range f.Backends() {
		if b.State != "ejected" {
			t.Fatalf("backend %s state %q, want ejected", b.Addr, b.State)
		}
	}

	// Recovery: same Front, no redial. Probation expires, a probe lands
	// on a revived backend, and markAlive readmits it.
	p1.setDown(false)
	p2.setDown(false)
	deadline = time.Now().Add(10 * time.Second)
	for {
		if _, _, err := f.ConnectedBatch(nil, pairs); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probes never recovered after backends came back")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := f.Stats(); st.Readmits < 1 {
		t.Fatalf("readmits = %d, want >= 1", st.Readmits)
	}
}

// TestMembershipChurnRace hammers the front from several goroutines while
// one backend flaps, exercising the breaker state machine, candidate
// selection, and failover concurrently (run under -race in CI).
func TestMembershipChurnRace(t *testing.T) {
	sch := staticScheme(t)
	a1, _ := startBinServer(t, sch)
	a2, _ := startBinServer(t, sch)
	p1 := newFlakyProxy(t, a1)

	f, err := front.Dial([]string{p1.addr(), a2}, front.Options{
		NoHedge:       true,
		FailThreshold: 2,
		Probation:     20 * time.Millisecond,
		ReconnectBase: 2 * time.Millisecond,
		ReconnectMax:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	stop := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		down := false
		for {
			select {
			case <-stop:
				p1.setDown(false)
				return
			case <-time.After(15 * time.Millisecond):
				down = !down
				p1.setDown(down)
			}
		}
	}()

	var wrong atomic.Uint64
	var probeWG sync.WaitGroup
	pairs := [][2]int{{0, 5}, {1, 7}}
	want, _, err := f.ConnectedBatch(nil, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		probeWG.Add(1)
		go func() {
			defer probeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, _, err := f.ConnectedBatch(nil, pairs)
				if err != nil {
					continue // errors are fine under churn; wrong answers are not
				}
				for i := range got {
					if got[i] != want[i] {
						wrong.Add(1)
					}
				}
			}
		}()
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	probeWG.Wait()
	flapWG.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d wrong answers under churn", n)
	}
}

// TestRequestBudgetExceeded pins the fleet behind a slow proxy and a tight
// end-to-end budget: the probe must fail with ErrBudgetExceeded at the
// budget, not hang for the backend's latency.
func TestRequestBudgetExceeded(t *testing.T) {
	sch := staticScheme(t)
	a1, _ := startBinServer(t, sch)
	slow := slowProxy(t, a1, 300*time.Millisecond)

	f, err := front.Dial([]string{slow}, front.Options{
		NoHedge:       true,
		RequestBudget: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	start := time.Now()
	_, _, err = f.ConnectedBatch(nil, [][2]int{{0, 5}})
	if !errors.Is(err, front.ErrBudgetExceeded) {
		t.Fatalf("probe err = %v, want ErrBudgetExceeded", err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("budgeted probe took %v, want ~50ms", d)
	}
	if st := f.Stats(); st.BudgetExceeded != 1 {
		t.Fatalf("BudgetExceeded = %d, want 1", st.BudgetExceeded)
	}
}

// unavailServer speaks just enough of the wire protocol to shed: it
// completes the handshake, then answers every request frame with
// CodeUnavailable, counting the requests it saw.
func unavailServer(t *testing.T) (addr string, served *atomic.Uint64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	served = new(atomic.Uint64)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				hello := make([]byte, wire.ClientHelloLen)
				if _, err := io.ReadFull(c, hello); err != nil {
					return
				}
				if _, err := c.Write(wire.AppendServerHello(nil, 1)); err != nil {
					return
				}
				rd := wire.NewReader(bufio.NewReader(c))
				var resp []byte
				for {
					_, payload, err := rd.Next()
					if err != nil {
						return
					}
					served.Add(1)
					var id uint64
					if len(payload) >= 8 {
						for i := 7; i >= 0; i-- {
							id = id<<8 | uint64(payload[i])
						}
					}
					resp = wire.AppendError(resp[:0], id, wire.CodeUnavailable, "shedding")
					if _, err := c.Write(resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), served
}

// TestUnavailableRetriesOnceThenSurfaces asserts the shed-retry policy:
// a CodeUnavailable answer is retried on exactly one other backend, and a
// second shed is surfaced to the caller (no retry storm) with the backends
// still counted alive — shedding is overload, not death.
func TestUnavailableRetriesOnceThenSurfaces(t *testing.T) {
	a1, n1 := unavailServer(t)
	a2, n2 := unavailServer(t)
	f, err := front.Dial([]string{a1, a2}, front.Options{NoHedge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	_, _, err = f.ConnectedBatch(nil, [][2]int{{0, 1}})
	if err == nil {
		t.Fatal("probe against shedding fleet succeeded")
	}
	var se *wireclient.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeUnavailable {
		t.Fatalf("probe err = %v, want CodeUnavailable ServerError", err)
	}
	if got := n1.Load() + n2.Load(); got != 2 {
		t.Fatalf("fleet saw %d requests, want exactly 2 (original + single retry)", got)
	}
	st := f.Stats()
	if st.Unavailable != 2 {
		t.Fatalf("Unavailable = %d, want 2", st.Unavailable)
	}
	if st.Ejections != 0 {
		t.Fatalf("Ejections = %d after sheds, want 0 (shedding servers are alive)", st.Ejections)
	}
	for _, b := range f.Backends() {
		if b.State != "healthy" {
			t.Fatalf("backend %s state %q after sheds, want healthy", b.Addr, b.State)
		}
	}
}

// TestHealthPollEjectsCatchingUpAndReadmits runs the active membership
// path: a backend whose /healthz answers 503 catching_up is ejected by
// the poll loop (probes never route to it), then readmitted — including
// its lag view — once the health check flips to 200.
func TestHealthPollEjectsCatchingUpAndReadmits(t *testing.T) {
	sch := staticScheme(t)
	a1, _ := startBinServer(t, sch)
	a2, _ := startBinServer(t, sch)

	var catching atomic.Bool
	catching.Store(true)
	mkHealth := func(catchingUp *atomic.Bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			body := map[string]any{"status": "ok"}
			code := http.StatusOK
			if catchingUp != nil && catchingUp.Load() {
				body["catching_up"] = true
				body["replica_lag_generations"] = 7
				code = http.StatusServiceUnavailable
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(body)
		}))
	}
	h1 := mkHealth(nil)
	h2 := mkHealth(&catching)
	t.Cleanup(h1.Close)
	t.Cleanup(h2.Close)

	f, err := front.Dial([]string{a1, a2}, front.Options{
		NoHedge:        true,
		FailThreshold:  2,
		Probation:      50 * time.Millisecond,
		HealthURLs:     []string{h1.URL, h2.URL},
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s; backends: %+v", desc, f.Backends())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("catching-up backend ejected", func() bool {
		b := f.Backends()[1]
		return b.State == "ejected" && b.CatchingUp
	})
	// Probes keep working off the healthy backend the whole time.
	if _, _, err := f.ConnectedBatch(nil, [][2]int{{0, 5}}); err != nil {
		t.Fatalf("probe during ejection: %v", err)
	}

	catching.Store(false)
	waitFor("backend readmitted after catch-up", func() bool {
		return f.Backends()[1].State == "healthy"
	})
	st := f.Stats()
	if st.Ejections < 1 || st.Readmits < 1 {
		t.Fatalf("ejections=%d readmits=%d, want both >= 1", st.Ejections, st.Readmits)
	}
}
