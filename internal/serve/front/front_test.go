package front_test

import (
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	ftc "repro"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/serve/front"
	"repro/internal/workload"
)

// startBinServer serves one scheme over the binary protocol on a loopback
// listener and returns its address.
func startBinServer(t *testing.T, sch serve.Scheme) (addr string, srv *serve.Server) {
	t.Helper()
	srv = serve.New(sch, 64)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.ServeBin(ln)
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String(), srv
}

func staticScheme(t *testing.T) *ftc.Scheme {
	t.Helper()
	s, err := ftc.NewFromGraph(workload.Petersen(), ftc.WithMaxFaults(2))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

// slowProxy forwards a TCP stream to backend, delaying every
// backend-to-client write by delay — a straggling replica.
func slowProxy(t *testing.T, backend string, delay time.Duration) (addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				c.Close()
				continue
			}
			go func() { io.Copy(up, c); up.Close() }()
			go func() {
				defer c.Close()
				buf := make([]byte, 32<<10)
				for {
					n, err := up.Read(buf)
					if n > 0 {
						time.Sleep(delay)
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func TestFanOutAnswersMatch(t *testing.T) {
	sch := staticScheme(t)
	a1, _ := startBinServer(t, sch)
	a2, _ := startBinServer(t, sch)
	f, err := front.Dial([]string{a1, a2}, front.Options{NoHedge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g := sch.Graph()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 12; i++ {
		faults := workload.RandomFaults(g, 1+rng.Intn(2), rng)
		pairs := [][2]int{{rng.Intn(g.N()), rng.Intn(g.N())}, {0, rng.Intn(g.N())}}
		got, gen, err := f.ConnectedBatch(faults, pairs)
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		if gen != sch.Generation() {
			t.Fatalf("probe %d: gen %d, want %d", i, gen, sch.Generation())
		}
		labels := make([]ftc.EdgeLabel, len(faults))
		for j, e := range faults {
			labels[j] = sch.EdgeLabelByIndex(e)
		}
		fs, err := ftc.NewFaultSet(labels)
		if err != nil {
			t.Fatalf("oracle fault set: %v", err)
		}
		for j, p := range pairs {
			want, err := fs.Connected(sch.VertexLabel(p[0]), sch.VertexLabel(p[1]))
			if err != nil {
				t.Fatal(err)
			}
			if got[j] != want {
				t.Fatalf("probe %d pair %d: got %v, want %v", i, j, got[j], want)
			}
		}
	}
	st := f.Stats()
	if st.Probes != 12 {
		t.Fatalf("probes = %d, want 12", st.Probes)
	}
	if st.Hedges != 0 {
		t.Fatalf("hedges = %d with NoHedge", st.Hedges)
	}
}

// TestHedgeBeatsSlowReplica puts one replica behind a 150ms proxy: hedged
// probes that land on it first must be answered by the fast replica well
// before the straggler responds.
func TestHedgeBeatsSlowReplica(t *testing.T) {
	sch := staticScheme(t)
	fastAddr, _ := startBinServer(t, sch)
	slowBackend, _ := startBinServer(t, sch)
	const stall = 150 * time.Millisecond
	slowAddr := slowProxy(t, slowBackend, stall)

	f, err := front.Dial([]string{slowAddr, fastAddr}, front.Options{
		HedgeAfter: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g := sch.Graph()
	rng := rand.New(rand.NewSource(5))
	start := time.Now()
	const probes = 8
	for i := 0; i < probes; i++ {
		faults := workload.RandomFaults(g, 1, rng)
		if _, _, err := f.ConnectedBatch(faults, [][2]int{{0, 5}}); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)

	st := f.Stats()
	if st.Hedges == 0 {
		t.Fatal("no hedges fired against a stalled replica")
	}
	if st.HedgeWins == 0 {
		t.Fatal("no hedge won against a stalled replica")
	}
	// Unhedged, every probe routed to the slow replica would eat the full
	// stall; hedged, each such probe costs ~HedgeAfter + fast RTT. Half
	// the probes start on the slow replica, so the unhedged floor is
	// probes/2 * stall. Allow generous slack for CI noise.
	if unhedgedFloor := stall * probes / 2; elapsed >= unhedgedFloor {
		t.Fatalf("hedged run took %v, not faster than unhedged floor %v", elapsed, unhedgedFloor)
	}
}

// TestPinnedConflictFailsOver pins probes to a generation only one replica
// has reached: probes landing on the stale replica must fail over and
// still answer.
func TestPinnedConflictFailsOver(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := workload.ErdosRenyi(40, 8.0/40, true, rng)
	edges := make([][2]int, g.M())
	for i, e := range g.Edges {
		edges[i] = [2]int{e.U, e.V}
	}
	open := func() *ftc.Network {
		nw, err := ftc.Open(g.N(), edges, ftc.WithMaxFaults(2), ftc.WithHeadroom(8))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return nw
	}
	ahead, stale := open(), open()

	// Advance only one network, to a generation the other never sees.
	u, v := findNonEdge(t, ahead.Graph())
	if _, err := ahead.CommitBatch([][2]int{{u, v}}, nil); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if ahead.Generation() == stale.Generation() {
		t.Fatal("generations did not diverge")
	}

	aheadAddr, _ := startBinServer(t, serveView(ahead))
	staleAddr, _ := startBinServer(t, serveView(stale))
	f, err := front.Dial([]string{staleAddr, aheadAddr}, front.Options{NoHedge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	pin := ahead.Generation()
	for i := 0; i < 8; i++ {
		_, gen, err := f.ConnectedBatchPinned([]int{0}, [][2]int{{0, 1}}, pin)
		if err != nil {
			t.Fatalf("pinned probe %d: %v", i, err)
		}
		if gen != pin {
			t.Fatalf("pinned probe %d answered at gen %d, want %d", i, gen, pin)
		}
	}
	if st := f.Stats(); st.Conflicts == 0 {
		t.Fatal("no conflicts recorded: round-robin should have hit the stale replica")
	}
}

// TestFrontQueryProducts drives route plans and vertex-fault probes
// through the hedged front, including the pinned-route conflict failover
// that keeps plans from being computed against shifted edge indices.
func TestFrontQueryProducts(t *testing.T) {
	sch := staticScheme(t)
	g := sch.Graph()
	a1, _ := startBinServer(t, sch)
	a2, _ := startBinServer(t, sch)
	f, err := front.Dial([]string{a1, a2}, front.Options{NoHedge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	pairs := [][2]int{{0, 5}, {3, 3}, {1, 8}}
	resp, err := f.RouteBatchPinned([]int{0, 2}, pairs, sch.Generation())
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if resp.Approx || resp.Gen != sch.Generation() || len(resp.Reachable) != len(pairs) {
		t.Fatalf("route response: %+v", resp)
	}
	for i, p := range pairs {
		if !resp.Reachable[i] {
			continue // Petersen minus 2 edges stays connected, but don't assume
		}
		path := resp.Paths[i]
		if len(path) == 0 || path[0] != p[0] || path[len(path)-1] != p[1] {
			t.Fatalf("leg %d: path %v does not go %d→%d", i, path, p[0], p[1])
		}
	}
	// A pin no replica can satisfy exhausts the fleet with conflicts.
	if _, err := f.RouteBatchPinned([]int{0}, pairs, sch.Generation()+7); err == nil {
		t.Fatal("impossible pin answered")
	}
	if st := f.Stats(); st.Conflicts == 0 {
		t.Fatalf("conflicts not counted: %+v", st)
	}

	// Vertex probes: Petersen is 3-regular, budget 2 → degraded (approx).
	out, approx, gen, err := f.VConnectedBatch([]int{0}, [][2]int{{1, 2}, {0, 4}})
	if err != nil {
		t.Fatalf("vconnected: %v", err)
	}
	if !approx || gen != sch.Generation() || len(out) != 2 {
		t.Fatalf("vconnected: out=%v approx=%v gen=%d", out, approx, gen)
	}
	if out[1] {
		t.Fatal("failed endpoint answered connected")
	}
	// Soundness even degraded: Petersen minus one vertex stays connected,
	// and the spanner holds ≥ the budget's redundancy — but only require
	// the sound direction here.
	if out[0] && !graphConnectedWithout(g, 0, 1, 2) {
		t.Fatal("degraded vconnected answered connected for a disconnected pair")
	}
}

// graphConnectedWithout is a BFS oracle: s–t connectivity in g minus one
// vertex.
func graphConnectedWithout(g interface {
	N() int
	Adj(v int) []graph.Half
}, dead, s, t int) bool {
	if s == dead || t == dead {
		return false
	}
	visited := make([]bool, g.N())
	visited[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == t {
			return true
		}
		for _, h := range g.Adj(cur) {
			if h.To == dead || visited[h.To] {
				continue
			}
			visited[h.To] = true
			queue = append(queue, h.To)
		}
	}
	return false
}

func TestDialAllDownFails(t *testing.T) {
	_, err := front.Dial([]string{"127.0.0.1:1", "127.0.0.1:2"}, front.Options{})
	if err == nil {
		t.Fatal("dial of unreachable fleet succeeded")
	}
	if !strings.Contains(err.Error(), "dial") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// serveView adapts a network to the server's static-view constructor while
// staying generation-aware (the network's snapshot moves under it).
func serveView(nw *ftc.Network) serve.Scheme { return nw }

func findNonEdge(t *testing.T, g interface {
	N() int
	HasEdge(u, v int) bool
}) (int, int) {
	t.Helper()
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if !g.HasEdge(u, v) {
				return u, v
			}
		}
	}
	t.Fatal("complete graph")
	return 0, 0
}
