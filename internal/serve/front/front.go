// Package front is the probe front of the replicated serving tier: one
// client-side fan-out point that spreads ConnectedBatch probes across a
// fleet of replicas over pooled binary-protocol connections (wireclient)
// and hedges the latency tail.
//
// Every probe goes to one replica picked round-robin. If no answer has
// arrived after the hedge delay — derived from the front's own observed
// p99 so it adapts to the fleet's real latency profile — the same probe is
// resent to the next replica and the first answer wins; the straggler's
// answer is discarded when it eventually lands (probes are read-only and
// idempotent, so duplicates are harmless). Hedging converts a stuck or
// GC-pausing replica from a p99 disaster into one extra in-flight probe.
//
// Generation pins thread through: a pinned probe answered with
// wire.CodeConflict (the replica is at a different generation — typically
// lagging the primary) is retried on the other replicas rather than
// failed, because replication lag is a per-replica, transient condition.
package front

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve/wire"
	"repro/internal/serve/wireclient"
)

// Options tunes a Front. The zero value is usable.
type Options struct {
	// Conns / Inflight are passed through to each replica's wireclient
	// (defaults: 1 connection, 32 in-flight batches per connection).
	Conns    int
	Inflight int

	// HedgeAfter fixes the hedge delay. Zero means adaptive: the delay
	// tracks the front's observed p99 probe latency, clamped to
	// [HedgeMin, HedgeMax].
	HedgeAfter time.Duration
	// HedgeMin / HedgeMax clamp the adaptive delay (defaults 500µs / 50ms).
	// The lower clamp stops a fast fleet from hedging every probe into
	// double load; the upper stops a cold ring from never hedging.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// NoHedge disables hedging entirely (the unhedged baseline the
	// replicate benchmark compares against).
	NoHedge bool

	// DialerFor overrides connection establishment per replica address
	// (tests inject slow or flaky transports). Nil uses TCP.
	DialerFor func(addr string) func() (net.Conn, error)

	// Reconnect tuning, passed through to wireclient.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
}

// Stats is a snapshot of the front's counters.
type Stats struct {
	Probes    uint64 // ConnectedBatch calls
	Hedges    uint64 // hedge requests actually sent
	HedgeWins uint64 // probes whose hedge answered first
	Conflicts uint64 // generation-pin conflicts retried on another replica
	Failovers uint64 // probes retried on another replica after an error

	// P50 / P99 are the current latency quantiles over the sliding
	// observation window (zero until enough samples).
	P50 time.Duration
	P99 time.Duration
}

// ErrNoReplicas is returned when a probe has exhausted every replica.
var ErrNoReplicas = errors.New("front: no replica answered")

// latWindow is the sliding latency window size (power of two).
const latWindow = 512

// latRing records recent probe latencies and answers quantile queries.
// Quantiles are recomputed at most once per refreshEvery observations and
// cached, so the hot path pays one mutexed append.
type latRing struct {
	mu     sync.Mutex
	buf    [latWindow]time.Duration
	n      int // total observations (min(n, latWindow) valid entries)
	sinceQ int // observations since last quantile refresh
	p50    time.Duration
	p99    time.Duration
}

const refreshEvery = 64

func (l *latRing) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.n%latWindow] = d
	l.n++
	l.sinceQ++
	if l.sinceQ >= refreshEvery || (l.p99 == 0 && l.n >= 16) {
		l.refreshLocked()
	}
	l.mu.Unlock()
}

func (l *latRing) refreshLocked() {
	n := l.n
	if n > latWindow {
		n = latWindow
	}
	if n == 0 {
		return
	}
	tmp := make([]time.Duration, n)
	copy(tmp, l.buf[:n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	l.p50 = tmp[n/2]
	l.p99 = tmp[(n*99)/100]
	l.sinceQ = 0
}

func (l *latRing) quantiles() (p50, p99 time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.p50, l.p99
}

// Front fans probes across a replica fleet. Safe for concurrent use.
type Front struct {
	clients []*wireclient.Client
	addrs   []string
	opts    Options
	rr      atomic.Uint64
	lat     latRing

	probes    atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
	conflicts atomic.Uint64
	failovers atomic.Uint64
}

// Dial connects to every replica address. It fails only if every replica
// is unreachable; reachable clients reconnect to the rest in the
// background (wireclient's redial loop).
func Dial(addrs []string, opts Options) (*Front, error) {
	if len(addrs) == 0 {
		return nil, errors.New("front: no replica addresses")
	}
	if opts.HedgeMin <= 0 {
		opts.HedgeMin = 500 * time.Microsecond
	}
	if opts.HedgeMax < opts.HedgeMin {
		opts.HedgeMax = 50 * time.Millisecond
		if opts.HedgeMax < opts.HedgeMin {
			opts.HedgeMax = opts.HedgeMin
		}
	}
	f := &Front{addrs: addrs, opts: opts}
	var firstErr error
	up := 0
	for _, addr := range addrs {
		wopts := wireclient.Options{
			Conns:         opts.Conns,
			Inflight:      opts.Inflight,
			ReconnectBase: opts.ReconnectBase,
			ReconnectMax:  opts.ReconnectMax,
		}
		if opts.DialerFor != nil {
			wopts.Dialer = opts.DialerFor(addr)
		}
		cl, err := wireclient.Dial(addr, wopts)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("front: dial %s: %w", addr, err)
			}
			f.clients = append(f.clients, nil)
			continue
		}
		f.clients = append(f.clients, cl)
		up++
	}
	if up == 0 {
		return nil, firstErr
	}
	return f, nil
}

// Close tears down every replica client.
func (f *Front) Close() error {
	var first error
	for _, cl := range f.clients {
		if cl == nil {
			continue
		}
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Replicas is how many replica addresses the front spreads over.
func (f *Front) Replicas() int { return len(f.addrs) }

// Stats snapshots the front's counters and latency quantiles.
func (f *Front) Stats() Stats {
	p50, p99 := f.lat.quantiles()
	return Stats{
		Probes:    f.probes.Load(),
		Hedges:    f.hedges.Load(),
		HedgeWins: f.hedgeWins.Load(),
		Conflicts: f.conflicts.Load(),
		Failovers: f.failovers.Load(),
		P50:       p50,
		P99:       p99,
	}
}

// hedgeDelay picks the current hedge delay.
func (f *Front) hedgeDelay() time.Duration {
	if f.opts.HedgeAfter > 0 {
		return f.opts.HedgeAfter
	}
	_, p99 := f.lat.quantiles()
	if p99 == 0 {
		// Cold ring: hedge conservatively until quantiles exist.
		return f.opts.HedgeMax
	}
	if p99 < f.opts.HedgeMin {
		return f.opts.HedgeMin
	}
	if p99 > f.opts.HedgeMax {
		return f.opts.HedgeMax
	}
	return p99
}

// ConnectedBatch answers one failure event against a batch of s–t pairs,
// unpinned: any replica's current generation is acceptable. Returns the
// answers and the generation they are valid for.
func (f *Front) ConnectedBatch(faultEdges []int, pairs [][2]int) ([]bool, uint64, error) {
	return f.ConnectedBatchPinned(faultEdges, pairs, 0)
}

// probeResult carries one replica's answer through the hedging select —
// for any of the query products (out for connectivity answers, route for
// route plans; each attempt owns its result storage since hedged attempts
// race).
type probeResult struct {
	out     []bool
	route   *wire.RouteResp
	approx  bool
	gen     uint64
	err     error
	replica int
	hedge   bool
}

// ConnectedBatchPinned is ConnectedBatch with a generation pin: nonzero
// genPin makes replicas at any other generation answer wire.CodeConflict,
// and the front retries those on the remaining replicas (replication lag
// is per-replica and transient). All errors from one attempt chain fail
// over to the next replica until the fleet is exhausted.
func (f *Front) ConnectedBatchPinned(faultEdges []int, pairs [][2]int, genPin uint64) ([]bool, uint64, error) {
	r, err := f.hedged(func(cl *wireclient.Client) probeResult {
		out, _, gen, err := cl.ProbeInto(faultEdges, pairs, nil, genPin)
		return probeResult{out: out, gen: gen, err: err}
	})
	return r.out, r.gen, err
}

// VConnectedBatch answers one vertex-failure event against a batch of
// s–t pairs across the fleet, with the same hedging/failover as
// ConnectedBatch. approx reports a degraded (spanner-backed) answer.
func (f *Front) VConnectedBatch(faultVertices []int, pairs [][2]int) ([]bool, bool, uint64, error) {
	return f.VConnectedBatchPinned(faultVertices, pairs, 0)
}

// VConnectedBatchPinned is VConnectedBatch with a generation pin.
func (f *Front) VConnectedBatchPinned(faultVertices []int, pairs [][2]int, genPin uint64) ([]bool, bool, uint64, error) {
	r, err := f.hedged(func(cl *wireclient.Client) probeResult {
		out, _, approx, gen, err := cl.VProbeInto(faultVertices, pairs, nil, genPin)
		return probeResult{out: out, approx: approx, gen: gen, err: err}
	})
	return r.out, r.approx, r.gen, err
}

// RouteBatchPinned computes route plans avoiding a forbidden edge set
// across the fleet. Route plans name edges by index, so callers holding
// indices across updates pin the generation; a lagging replica answers
// wire.CodeConflict and the front fails over to the rest of the fleet,
// which is what keeps a pinned plan request from being silently planned
// against shifted indices. Hedged attempts each decode into their own
// RouteResp (the winner's is returned).
func (f *Front) RouteBatchPinned(faultEdges []int, pairs [][2]int, genPin uint64) (*wire.RouteResp, error) {
	r, err := f.hedged(func(cl *wireclient.Client) probeResult {
		resp := new(wire.RouteResp)
		err := cl.Route(faultEdges, pairs, resp, genPin)
		return probeResult{route: resp, gen: resp.Gen, approx: resp.Approx, err: err}
	})
	return r.route, err
}

// hedged runs one query-product attempt through the hedging/failover
// loop: round-robin first replica, a hedge to the next after the adaptive
// delay, conflict/error failover until the fleet is exhausted. do must be
// safe to run concurrently against different replicas (hedges race).
func (f *Front) hedged(do func(cl *wireclient.Client) probeResult) (probeResult, error) {
	f.probes.Add(1)
	n := len(f.clients)
	first := int(f.rr.Add(1)-1) % n

	// resCh is buffered for every possible sender so stragglers never
	// leak a goroutine.
	resCh := make(chan probeResult, n)
	launch := func(idx int, hedge bool) {
		cl := f.clients[idx]
		if cl == nil {
			resCh <- probeResult{err: ErrNoReplicas, replica: idx, hedge: hedge}
			return
		}
		go func() {
			start := time.Now()
			r := do(cl)
			if r.err == nil {
				f.lat.observe(time.Since(start))
			}
			r.replica = idx
			r.hedge = hedge
			resCh <- r
		}()
	}

	launch(first, false)
	pending := 1
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if !f.opts.NoHedge && n > 1 {
		hedgeTimer = time.NewTimer(f.hedgeDelay())
		hedgeC = hedgeTimer.C
		defer hedgeTimer.Stop()
	}

	tried := map[int]bool{first: true}
	var lastErr error
	for pending > 0 {
		select {
		case r := <-resCh:
			pending--
			if r.err == nil {
				if r.hedge {
					f.hedgeWins.Add(1)
				}
				return r, nil
			}
			lastErr = r.err
			var se *wireclient.ServerError
			conflict := errors.As(r.err, &se) && se.Code == wire.CodeConflict
			if conflict {
				f.conflicts.Add(1)
			} else {
				f.failovers.Add(1)
			}
			// Fail over to an untried replica, if any.
			if next, ok := f.nextUntried(tried, r.replica); ok {
				tried[next] = true
				launch(next, false)
				pending++
			}
		case <-hedgeC:
			hedgeC = nil
			if next, ok := f.nextUntried(tried, first); ok {
				tried[next] = true
				f.hedges.Add(1)
				launch(next, true)
				pending++
			}
		}
	}
	if lastErr == nil {
		lastErr = ErrNoReplicas
	}
	return probeResult{}, fmt.Errorf("front: all %d replicas failed: %w", n, lastErr)
}

// nextUntried picks the next replica index after from that has not been
// tried yet.
func (f *Front) nextUntried(tried map[int]bool, from int) (int, bool) {
	n := len(f.clients)
	for d := 1; d <= n; d++ {
		idx := (from + d) % n
		if !tried[idx] {
			return idx, true
		}
	}
	return 0, false
}
