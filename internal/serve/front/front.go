// Package front is the probe front of the replicated serving tier: one
// client-side fan-out point that spreads ConnectedBatch probes across a
// fleet of replicas over pooled binary-protocol connections (wireclient)
// and hedges the latency tail.
//
// Every probe goes to one backend picked round-robin from the live
// membership view. If no answer has arrived after the hedge delay —
// derived from the front's own observed p99 so it adapts to the fleet's
// real latency profile — the same probe is resent to the next backend and
// the first answer wins; the straggler's answer is discarded when it
// eventually lands (probes are read-only and idempotent, so duplicates
// are harmless). Hedging converts a stuck or GC-pausing replica from a
// p99 disaster into one extra in-flight probe.
//
// Membership is self-healing (DESIGN.md §3.16): each backend runs a
// per-backend state machine healthy → suspect → ejected. Consecutive
// transport failures (from probes or the optional /healthz poll) trip the
// breaker and eject the backend; an ejected backend sits out a jittered
// probation window, then a single probe may readmit it. Backends whose
// replication lag exceeds LagThreshold (or that report catching_up) stay
// members but are deprioritized — routed to only when every fresh backend
// is down. When no backend is routable at all, probes fail fast with
// ErrNoBackends instead of hanging on hedge timers.
//
// Generation pins thread through: a pinned probe answered with
// wire.CodeConflict (the replica is at a different generation — typically
// lagging the primary) is retried on the other replicas rather than
// failed, because replication lag is a per-replica, transient condition.
// A backend that sheds with wire.CodeUnavailable is alive but overloaded:
// the front retries exactly once against a different backend, then
// surfaces the shed to the caller.
package front

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve/wire"
	"repro/internal/serve/wireclient"
)

// Options tunes a Front. The zero value is usable.
type Options struct {
	// Conns / Inflight are passed through to each replica's wireclient
	// (defaults: 1 connection, 32 in-flight batches per connection).
	Conns    int
	Inflight int

	// HedgeAfter fixes the hedge delay. Zero means adaptive: the delay
	// tracks the front's observed p99 probe latency, clamped to
	// [HedgeMin, HedgeMax].
	HedgeAfter time.Duration
	// HedgeMin / HedgeMax clamp the adaptive delay (defaults 500µs / 50ms).
	// The lower clamp stops a fast fleet from hedging every probe into
	// double load; the upper stops a cold ring from never hedging.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// NoHedge disables hedging entirely (the unhedged baseline the
	// replicate benchmark compares against).
	NoHedge bool

	// FailThreshold is how many consecutive transport failures move a
	// backend from healthy through suspect to ejected (default 3).
	FailThreshold int
	// Probation is how long an ejected backend sits out before one
	// jittered probe may readmit it (default 1s; the actual wait is
	// uniform in [Probation/2, Probation*3/2] so a fleet-wide outage does
	// not readmit in lockstep).
	Probation time.Duration
	// LagThreshold deprioritizes backends whose replica_lag_generations
	// (reported by their /healthz) exceeds it. 0 disables lag weighting.
	LagThreshold uint64

	// HealthURLs maps addrs[i] to that backend's HTTP base URL (e.g.
	// "http://127.0.0.1:8080"). When set (length must match addrs), the
	// front polls each backend's /healthz every HealthInterval: 200
	// readmits and refreshes lag, 503/timeouts feed the same breaker as
	// probe failures, and a backend that was unreachable at Dial time is
	// (re)dialed once its health check passes. Empty disables polling —
	// the breaker then runs on probe outcomes alone.
	HealthURLs []string
	// HealthInterval is the active poll cadence (default 500ms).
	HealthInterval time.Duration

	// RequestBudget is the end-to-end deadline budget for one probe: it
	// is stamped on every frame (replicas shed frames whose budget was
	// already spent queueing) and enforced front-side — a probe with no
	// answer inside the budget fails with ErrBudgetExceeded. 0 disables.
	RequestBudget time.Duration

	// DialerFor overrides connection establishment per replica address
	// (tests inject slow or flaky transports). Nil uses TCP.
	DialerFor func(addr string) func() (net.Conn, error)

	// Reconnect tuning, passed through to wireclient.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
}

// Stats is a snapshot of the front's counters.
type Stats struct {
	Probes    uint64 // ConnectedBatch calls
	Hedges    uint64 // hedge requests actually sent
	HedgeWins uint64 // probes whose hedge answered first
	Conflicts uint64 // generation-pin conflicts retried on another replica
	Failovers uint64 // probes retried on another replica after an error

	Ejections      uint64 // backends ejected by the breaker
	Readmits       uint64 // ejected backends readmitted
	Unavailable    uint64 // CodeUnavailable sheds observed from backends
	BudgetExceeded uint64 // probes failed by the front-side deadline
	NoBackends     uint64 // probes failed fast with no routable backend

	// P50 / P99 are the current latency quantiles over the sliding
	// observation window (zero until enough samples).
	P50 time.Duration
	P99 time.Duration
}

// ErrNoReplicas is returned when a probe has exhausted every replica.
var ErrNoReplicas = errors.New("front: no replica answered")

// ErrNoBackends is returned immediately — no hedge timers, no dial
// attempts — when the membership view has no routable backend: everything
// is ejected and still inside probation.
var ErrNoBackends = errors.New("front: no live backends")

// ErrBudgetExceeded is returned when a probe's end-to-end deadline budget
// (Options.RequestBudget) expires before any backend answered.
var ErrBudgetExceeded = errors.New("front: request deadline budget exceeded")

// latWindow is the sliding latency window size (power of two).
const latWindow = 512

// latRing records recent probe latencies and answers quantile queries.
// Quantiles are recomputed at most once per refreshEvery observations and
// cached, so the hot path pays one mutexed append.
type latRing struct {
	mu     sync.Mutex
	buf    [latWindow]time.Duration
	n      int // total observations (min(n, latWindow) valid entries)
	sinceQ int // observations since last quantile refresh
	p50    time.Duration
	p99    time.Duration
}

const refreshEvery = 64

func (l *latRing) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.n%latWindow] = d
	l.n++
	l.sinceQ++
	if l.sinceQ >= refreshEvery || (l.p99 == 0 && l.n >= 16) {
		l.refreshLocked()
	}
	l.mu.Unlock()
}

func (l *latRing) refreshLocked() {
	n := l.n
	if n > latWindow {
		n = latWindow
	}
	if n == 0 {
		return
	}
	tmp := make([]time.Duration, n)
	copy(tmp, l.buf[:n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	l.p50 = tmp[n/2]
	l.p99 = tmp[(n*99)/100]
	l.sinceQ = 0
}

func (l *latRing) quantiles() (p50, p99 time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.p50, l.p99
}

// Backend state machine values.
const (
	stateHealthy int32 = iota
	stateSuspect
	stateEjected
)

func stateName(s int32) string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateSuspect:
		return "suspect"
	default:
		return "ejected"
	}
}

// backend is one member of the fleet: its client (nil until the first
// successful dial), breaker state, and the lag view from health polling.
type backend struct {
	addr      string
	healthURL string
	cl        atomic.Pointer[wireclient.Client]

	state       atomic.Int32
	consecFails atomic.Int32
	retryAt     atomic.Int64 // unix nanos when probation expires (ejected only)

	lag        atomic.Uint64
	catchingUp atomic.Bool
}

func (b *backend) client() *wireclient.Client { return b.cl.Load() }

// BackendState is the externally visible snapshot of one backend, for
// operators and the chaos harness's assertions.
type BackendState struct {
	Addr        string `json:"addr"`
	State       string `json:"state"` // "healthy" | "suspect" | "ejected"
	ConsecFails int    `json:"consecutive_failures"`
	Lag         uint64 `json:"replica_lag_generations"`
	CatchingUp  bool   `json:"catching_up"`
	Connected   bool   `json:"connected"` // a wireclient exists for this backend
}

// Front fans probes across a replica fleet. Safe for concurrent use.
type Front struct {
	backends []*backend
	opts     Options
	rr       atomic.Uint64
	lat      latRing
	mkClient func(addr string) (*wireclient.Client, error)

	probes         atomic.Uint64
	hedges         atomic.Uint64
	hedgeWins      atomic.Uint64
	conflicts      atomic.Uint64
	failovers      atomic.Uint64
	ejections      atomic.Uint64
	readmits       atomic.Uint64
	unavailable    atomic.Uint64
	budgetExceeded atomic.Uint64
	noBackends     atomic.Uint64

	stopHealth chan struct{}
	healthWG   sync.WaitGroup
	closeOnce  sync.Once
}

// Dial connects to every replica address. It fails only if every replica
// is unreachable; reachable clients reconnect to the rest in the
// background (wireclient's redial loop), and with health polling enabled
// a backend that was down at Dial time is dialed once its health check
// passes.
func Dial(addrs []string, opts Options) (*Front, error) {
	if len(addrs) == 0 {
		return nil, errors.New("front: no replica addresses")
	}
	if len(opts.HealthURLs) > 0 && len(opts.HealthURLs) != len(addrs) {
		return nil, fmt.Errorf("front: %d health URLs for %d addresses", len(opts.HealthURLs), len(addrs))
	}
	if opts.HedgeMin <= 0 {
		opts.HedgeMin = 500 * time.Microsecond
	}
	if opts.HedgeMax < opts.HedgeMin {
		opts.HedgeMax = 50 * time.Millisecond
		if opts.HedgeMax < opts.HedgeMin {
			opts.HedgeMax = opts.HedgeMin
		}
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 3
	}
	if opts.Probation <= 0 {
		opts.Probation = time.Second
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = 500 * time.Millisecond
	}
	f := &Front{opts: opts, stopHealth: make(chan struct{})}
	f.mkClient = func(addr string) (*wireclient.Client, error) {
		wopts := wireclient.Options{
			Conns:         opts.Conns,
			Inflight:      opts.Inflight,
			ReconnectBase: opts.ReconnectBase,
			ReconnectMax:  opts.ReconnectMax,
		}
		if opts.DialerFor != nil {
			wopts.Dialer = opts.DialerFor(addr)
		}
		return wireclient.Dial(addr, wopts)
	}
	var firstErr error
	up := 0
	for i, addr := range addrs {
		b := &backend{addr: addr}
		if len(opts.HealthURLs) > 0 {
			b.healthURL = opts.HealthURLs[i]
		}
		cl, err := f.mkClient(addr)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("front: dial %s: %w", addr, err)
			}
			// Down at start: ejected from the first probe's point of
			// view, eligible for probation (or health-poll) readmission.
			b.state.Store(stateEjected)
			b.retryAt.Store(time.Now().Add(f.probationWait()).UnixNano())
		} else {
			b.cl.Store(cl)
			up++
		}
		f.backends = append(f.backends, b)
	}
	if up == 0 {
		f.Close()
		return nil, firstErr
	}
	if len(opts.HealthURLs) > 0 {
		f.healthWG.Add(1)
		go f.healthLoop()
	}
	return f, nil
}

// Close stops health polling and tears down every replica client.
func (f *Front) Close() error {
	f.closeOnce.Do(func() { close(f.stopHealth) })
	f.healthWG.Wait()
	var first error
	for _, b := range f.backends {
		if cl := b.client(); cl != nil {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Replicas is how many replica addresses the front spreads over.
func (f *Front) Replicas() int { return len(f.backends) }

// Backends snapshots the per-backend membership state.
func (f *Front) Backends() []BackendState {
	out := make([]BackendState, len(f.backends))
	for i, b := range f.backends {
		out[i] = BackendState{
			Addr:        b.addr,
			State:       stateName(b.state.Load()),
			ConsecFails: int(b.consecFails.Load()),
			Lag:         b.lag.Load(),
			CatchingUp:  b.catchingUp.Load(),
			Connected:   b.client() != nil,
		}
	}
	return out
}

// Stats snapshots the front's counters and latency quantiles.
func (f *Front) Stats() Stats {
	p50, p99 := f.lat.quantiles()
	return Stats{
		Probes:         f.probes.Load(),
		Hedges:         f.hedges.Load(),
		HedgeWins:      f.hedgeWins.Load(),
		Conflicts:      f.conflicts.Load(),
		Failovers:      f.failovers.Load(),
		Ejections:      f.ejections.Load(),
		Readmits:       f.readmits.Load(),
		Unavailable:    f.unavailable.Load(),
		BudgetExceeded: f.budgetExceeded.Load(),
		NoBackends:     f.noBackends.Load(),
		P50:            p50,
		P99:            p99,
	}
}

// probationWait is the jittered sit-out before an ejected backend may be
// probed again: uniform in [Probation/2, Probation*3/2].
func (f *Front) probationWait() time.Duration {
	p := f.opts.Probation
	return p/2 + time.Duration(rand.Int63n(int64(p)))
}

// markAlive records a definitive sign of backend life — a completed
// exchange, any server-sent response (including conflicts and sheds), or
// a 200 health check — resetting the breaker and readmitting the backend
// if it was ejected.
func (f *Front) markAlive(b *backend) {
	b.consecFails.Store(0)
	if b.state.Swap(stateHealthy) == stateEjected {
		f.readmits.Add(1)
	}
}

// markFailure records a transport-level failure (dial error, reset, hang,
// failed health check). FailThreshold consecutive failures eject the
// backend; each further failure extends its probation.
func (f *Front) markFailure(b *backend) {
	fails := b.consecFails.Add(1)
	if int(fails) >= f.opts.FailThreshold {
		if b.state.Swap(stateEjected) != stateEjected {
			f.ejections.Add(1)
		}
		b.retryAt.Store(time.Now().Add(f.probationWait()).UnixNano())
		return
	}
	b.state.CompareAndSwap(stateHealthy, stateSuspect)
}

// candidates returns the indices a probe may route to, in preference
// order: fresh members first (rotated round-robin), then lagging /
// catching-up members, then ejected backends whose probation has expired
// (their probe doubles as the readmission check). Empty means fail fast.
func (f *Front) candidates() []int {
	now := time.Now().UnixNano()
	var fresh, lagged, probation []int
	for i, b := range f.backends {
		switch b.state.Load() {
		case stateEjected:
			if b.retryAt.Load() <= now && b.client() != nil {
				probation = append(probation, i)
			}
		default:
			if b.client() == nil {
				continue
			}
			if b.catchingUp.Load() || (f.opts.LagThreshold > 0 && b.lag.Load() > f.opts.LagThreshold) {
				lagged = append(lagged, i)
			} else {
				fresh = append(fresh, i)
			}
		}
	}
	if k := len(fresh); k > 1 {
		rot := int(f.rr.Add(1)-1) % k
		fresh = append(fresh[rot:], fresh[:rot]...)
	}
	return append(append(fresh, lagged...), probation...)
}

// hedgeDelay picks the current hedge delay.
func (f *Front) hedgeDelay() time.Duration {
	if f.opts.HedgeAfter > 0 {
		return f.opts.HedgeAfter
	}
	_, p99 := f.lat.quantiles()
	if p99 == 0 {
		// Cold ring: hedge conservatively until quantiles exist.
		return f.opts.HedgeMax
	}
	if p99 < f.opts.HedgeMin {
		return f.opts.HedgeMin
	}
	if p99 > f.opts.HedgeMax {
		return f.opts.HedgeMax
	}
	return p99
}

// ConnectedBatch answers one failure event against a batch of s–t pairs,
// unpinned: any replica's current generation is acceptable. Returns the
// answers and the generation they are valid for.
func (f *Front) ConnectedBatch(faultEdges []int, pairs [][2]int) ([]bool, uint64, error) {
	return f.ConnectedBatchPinned(faultEdges, pairs, 0)
}

// probeResult carries one replica's answer through the hedging select —
// for any of the query products (out for connectivity answers, route for
// route plans; each attempt owns its result storage since hedged attempts
// race).
type probeResult struct {
	out     []bool
	route   *wire.RouteResp
	approx  bool
	gen     uint64
	err     error
	replica int
	hedge   bool
}

// ConnectedBatchPinned is ConnectedBatch with a generation pin: nonzero
// genPin makes replicas at any other generation answer wire.CodeConflict,
// and the front retries those on the remaining replicas (replication lag
// is per-replica and transient). All errors from one attempt chain fail
// over to the next replica until the routable set is exhausted.
func (f *Front) ConnectedBatchPinned(faultEdges []int, pairs [][2]int, genPin uint64) ([]bool, uint64, error) {
	r, err := f.hedged(func(cl *wireclient.Client, budget time.Duration) probeResult {
		out, _, gen, err := cl.ProbeIntoBudget(faultEdges, pairs, nil, genPin, budget)
		return probeResult{out: out, gen: gen, err: err}
	})
	return r.out, r.gen, err
}

// VConnectedBatch answers one vertex-failure event against a batch of
// s–t pairs across the fleet, with the same hedging/failover as
// ConnectedBatch. approx reports a degraded (spanner-backed) answer.
func (f *Front) VConnectedBatch(faultVertices []int, pairs [][2]int) ([]bool, bool, uint64, error) {
	return f.VConnectedBatchPinned(faultVertices, pairs, 0)
}

// VConnectedBatchPinned is VConnectedBatch with a generation pin.
func (f *Front) VConnectedBatchPinned(faultVertices []int, pairs [][2]int, genPin uint64) ([]bool, bool, uint64, error) {
	r, err := f.hedged(func(cl *wireclient.Client, budget time.Duration) probeResult {
		out, _, approx, gen, err := cl.VProbeIntoBudget(faultVertices, pairs, nil, genPin, budget)
		return probeResult{out: out, approx: approx, gen: gen, err: err}
	})
	return r.out, r.approx, r.gen, err
}

// RouteBatchPinned computes route plans avoiding a forbidden edge set
// across the fleet. Route plans name edges by index, so callers holding
// indices across updates pin the generation; a lagging replica answers
// wire.CodeConflict and the front fails over to the rest of the fleet,
// which is what keeps a pinned plan request from being silently planned
// against shifted indices. Hedged attempts each decode into their own
// RouteResp (the winner's is returned).
func (f *Front) RouteBatchPinned(faultEdges []int, pairs [][2]int, genPin uint64) (*wire.RouteResp, error) {
	r, err := f.hedged(func(cl *wireclient.Client, budget time.Duration) probeResult {
		resp := new(wire.RouteResp)
		err := cl.RouteBudget(faultEdges, pairs, resp, genPin, budget)
		return probeResult{route: resp, gen: resp.Gen, approx: resp.Approx, err: err}
	})
	return r.route, err
}

// hedged runs one query-product attempt through the hedging/failover
// loop: the routable candidate list in preference order, a hedge to the
// next candidate after the adaptive delay, conflict/error failover until
// the candidates are exhausted, all under the end-to-end deadline budget.
// do must be safe to run concurrently against different replicas (hedges
// race); the budget passed to do is the remaining end-to-end budget at
// launch (0 when budgets are disabled).
func (f *Front) hedged(do func(cl *wireclient.Client, budget time.Duration) probeResult) (probeResult, error) {
	f.probes.Add(1)
	cand := f.candidates()
	if len(cand) == 0 {
		f.noBackends.Add(1)
		return probeResult{}, ErrNoBackends
	}
	start := time.Now()
	var deadlineC <-chan time.Time
	if f.opts.RequestBudget > 0 {
		t := time.NewTimer(f.opts.RequestBudget)
		defer t.Stop()
		deadlineC = t.C
	}

	// resCh is buffered for every possible sender so stragglers never
	// leak a goroutine.
	resCh := make(chan probeResult, len(cand))
	next := 0 // next unlaunched candidate position
	launch := func(hedge bool) bool {
		for ; next < len(cand); next++ {
			idx := cand[next]
			cl := f.backends[idx].client()
			if cl == nil {
				continue
			}
			budget := time.Duration(0)
			if f.opts.RequestBudget > 0 {
				budget = f.opts.RequestBudget - time.Since(start)
				if budget <= 0 {
					return false
				}
			}
			next++
			go func() {
				t0 := time.Now()
				r := do(cl, budget)
				if r.err == nil {
					f.lat.observe(time.Since(t0))
				}
				r.replica = idx
				r.hedge = hedge
				resCh <- r
			}()
			return true
		}
		return false
	}

	if !launch(false) {
		f.noBackends.Add(1)
		return probeResult{}, ErrNoBackends
	}
	pending := 1
	var hedgeC <-chan time.Time
	if !f.opts.NoHedge && len(cand) > 1 {
		hedgeTimer := time.NewTimer(f.hedgeDelay())
		hedgeC = hedgeTimer.C
		defer hedgeTimer.Stop()
	}

	unavailSeen := 0
	var lastErr error
	for pending > 0 {
		select {
		case r := <-resCh:
			pending--
			b := f.backends[r.replica]
			if r.err == nil {
				f.markAlive(b)
				if r.hedge {
					f.hedgeWins.Add(1)
				}
				return r, nil
			}
			lastErr = r.err
			var se *wireclient.ServerError
			if errors.As(r.err, &se) {
				// The server answered: it is alive regardless of the code.
				f.markAlive(b)
				switch se.Code {
				case wire.CodeConflict:
					f.conflicts.Add(1)
				case wire.CodeUnavailable:
					// Overloaded, not broken: retry exactly once against
					// a different backend, then surface the shed — piling
					// retries onto a saturated fleet makes the overload
					// worse.
					f.unavailable.Add(1)
					if unavailSeen++; unavailSeen > 1 {
						continue
					}
				default:
					f.failovers.Add(1)
				}
			} else {
				f.markFailure(b)
				f.failovers.Add(1)
			}
			if launch(false) {
				pending++
			}
		case <-hedgeC:
			hedgeC = nil
			if launch(true) {
				f.hedges.Add(1)
				pending++
			}
		case <-deadlineC:
			f.budgetExceeded.Add(1)
			return probeResult{}, fmt.Errorf("%w (%v)", ErrBudgetExceeded, f.opts.RequestBudget)
		}
	}
	if lastErr == nil {
		lastErr = ErrNoReplicas
	}
	return probeResult{}, fmt.Errorf("front: all %d routable backends failed: %w", len(cand), lastErr)
}

// healthzView is the slice of the backend /healthz body membership cares
// about.
type healthzView struct {
	CatchingUp bool   `json:"catching_up"`
	Lag        uint64 `json:"replica_lag_generations"`
}

// healthLoop polls every backend's /healthz on a jittered cadence,
// feeding the same breaker as probe outcomes: 200 readmits and refreshes
// the lag view, 503 (catching up) and transport failures count against
// the backend, and a backend with no client yet (down at Dial time) is
// dialed once its health check passes.
func (f *Front) healthLoop() {
	defer f.healthWG.Done()
	client := &http.Client{Timeout: f.opts.HealthInterval}
	for {
		iv := f.opts.HealthInterval
		sleep := iv/2 + time.Duration(rand.Int63n(int64(iv)))
		select {
		case <-f.stopHealth:
			return
		case <-time.After(sleep):
		}
		for _, b := range f.backends {
			if b.healthURL == "" {
				continue
			}
			f.healthCheck(client, b)
		}
	}
}

// healthCheck runs one poll of one backend.
func (f *Front) healthCheck(client *http.Client, b *backend) {
	resp, err := client.Get(b.healthURL + "/healthz")
	if err != nil {
		f.markFailure(b)
		return
	}
	defer resp.Body.Close()
	var hv healthzView
	_ = json.NewDecoder(resp.Body).Decode(&hv)
	b.lag.Store(hv.Lag)
	b.catchingUp.Store(hv.CatchingUp)
	if resp.StatusCode != http.StatusOK {
		// 503 catching-up (or any other failure status): alive but not
		// servable — keep it out of the fresh set, count it against the
		// breaker so a perpetually unready backend ejects.
		f.markFailure(b)
		return
	}
	if b.client() == nil {
		cl, err := f.mkClient(b.addr)
		if err != nil {
			f.markFailure(b)
			return
		}
		b.cl.Store(cl)
	}
	f.markAlive(b)
}
