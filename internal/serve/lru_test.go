package serve

import "testing"

func TestLRUEvictionAndStats(t *testing.T) {
	c := newLRUCache(2)
	if _, hit := c.get(1, []int{1}); hit {
		t.Fatal("fresh key reported as hit")
	}
	if _, hit := c.get(1, []int{1}); !hit {
		t.Fatal("second lookup of same key missed")
	}
	c.get(2, []int{2})
	c.get(1, []int{1}) // touch 1 so 2 becomes the LRU victim
	c.get(3, []int{3}) // evicts 2
	if _, hit := c.get(2, []int{2}); hit {
		t.Fatal("evicted key reported as hit")
	}
	if _, hit := c.get(1, []int{1}); hit {
		// 1 was evicted by re-inserting 2 above; keys 2 and 1 now rotate.
		t.Fatal("expected 1 to have been evicted after reinserting 2")
	}
	hits, misses, size, capacity := c.stats()
	if capacity != 2 || size != 2 {
		t.Fatalf("size=%d capacity=%d, want 2/2", size, capacity)
	}
	if hits != 2 || misses != 5 {
		t.Fatalf("hits=%d misses=%d, want 2/5", hits, misses)
	}
}

func TestLRUCollisionReturnsNil(t *testing.T) {
	c := newLRUCache(4)
	if ent, _ := c.get(7, []int{1, 2}); ent == nil {
		t.Fatal("insert returned nil entry")
	}
	// Same key, different canonical fault set: must refuse to serve the
	// cached entry.
	if ent, hit := c.get(7, []int{1, 3}); ent != nil || hit {
		t.Fatalf("colliding key served cached entry (ent=%v hit=%v)", ent, hit)
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := newLRUCache(0)
	c.get(1, []int{1})
	c.get(2, []int{2})
	if _, _, size, capacity := c.stats(); size != 1 || capacity != 1 {
		t.Fatalf("size=%d capacity=%d, want 1/1", size, capacity)
	}
}
