package serve

import (
	"testing"

	"repro/internal/core"
)

func TestLRUEvictionAndStats(t *testing.T) {
	c := newLRUCache(2)
	if _, hit := c.get(1, []int{1}, 1); hit {
		t.Fatal("fresh key reported as hit")
	}
	if _, hit := c.get(1, []int{1}, 1); !hit {
		t.Fatal("second lookup of same key missed")
	}
	c.get(2, []int{2}, 1)
	c.get(1, []int{1}, 1) // touch 1 so 2 becomes the LRU victim
	c.get(3, []int{3}, 1) // evicts 2
	if _, hit := c.get(2, []int{2}, 1); hit {
		t.Fatal("evicted key reported as hit")
	}
	if _, hit := c.get(1, []int{1}, 1); hit {
		// 1 was evicted by re-inserting 2 above; keys 2 and 1 now rotate.
		t.Fatal("expected 1 to have been evicted after reinserting 2")
	}
	hits, misses, _, _, _, size, capacity := c.stats()
	if capacity != 2 || size != 2 {
		t.Fatalf("size=%d capacity=%d, want 2/2", size, capacity)
	}
	if hits != 2 || misses != 5 {
		t.Fatalf("hits=%d misses=%d, want 2/5", hits, misses)
	}
}

func TestLRUCollisionReturnsNil(t *testing.T) {
	c := newLRUCache(4)
	if ent, _ := c.get(7, []int{1, 2}, 1); ent == nil {
		t.Fatal("insert returned nil entry")
	}
	// Same key, different canonical fault set: must refuse to serve the
	// cached entry.
	if ent, hit := c.get(7, []int{1, 3}, 1); ent != nil || hit {
		t.Fatalf("colliding key served cached entry (ent=%v hit=%v)", ent, hit)
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := newLRUCache(0)
	c.get(1, []int{1}, 1)
	c.get(2, []int{2}, 1)
	if _, _, _, _, _, size, capacity := c.stats(); size != 1 || capacity != 1 {
		t.Fatalf("size=%d capacity=%d, want 1/1", size, capacity)
	}
}

// TestLRUGenerationMismatchReplaces: an entry left at an older generation
// (a probe racing an update sweep) must be replaced, never served.
func TestLRUGenerationMismatchReplaces(t *testing.T) {
	c := newLRUCache(4)
	ent1, _ := c.get(9, []int{4}, 1)
	ent1.compiled.Store(true)
	ent2, hit := c.get(9, []int{4}, 2)
	if hit || ent2 == ent1 {
		t.Fatalf("stale-generation entry served (hit=%v same=%v)", hit, ent2 == ent1)
	}
	if _, hit := c.get(9, []int{4}, 2); !hit {
		t.Fatal("replaced entry not cached at the new generation")
	}
}

// TestLRUStaleProbeDoesNotEvictNewerEntry: a probe still holding a
// superseded snapshot must bypass — not evict — an entry the update sweep
// carried into a newer generation.
func TestLRUStaleProbeDoesNotEvictNewerEntry(t *testing.T) {
	c := newLRUCache(4)
	fresh, _ := c.get(9, []int{4}, 3)
	fresh.compiled.Store(true)
	if ent, hit := c.get(9, []int{4}, 2); ent != nil || hit {
		t.Fatalf("stale probe was served a cache slot (ent=%v hit=%v)", ent, hit)
	}
	if ent, hit := c.get(9, []int{4}, 3); !hit || ent != fresh {
		t.Fatal("newer-generation entry was evicted by a stale probe")
	}
}

// TestLRUApplyUpdateSweep: the selective sweep must evict exactly the
// entries touching relabeled/removed edges (plus uncompiled ones) and
// rebase the rest with remapped indices.
func TestLRUApplyUpdateSweep(t *testing.T) {
	c := newLRUCache(8)
	mk := func(canon []int) *cacheEntry {
		ent, _ := c.get(cacheKey(canon), canon, 1)
		ent.fs = &core.FaultSet{} // stand-in; Rebase of an empty set is itself
		ent.compiled.Store(true)
		return ent
	}
	mk([]int{0, 2})
	mk([]int{5})
	mk([]int{3, 7})
	uncompiled, _ := c.get(cacheKey([]int{9}), []int{9}, 1)
	_ = uncompiled // stays uncompiled: must be evicted by the sweep

	// Commit: edge 5 removed (indices above shift down), edge 2 relabeled.
	remap := []int{0, 1, 2, 3, 4, -1, 5, 6, 7, 8}
	rep := &core.CommitReport{
		Gen:         2,
		Token:       42,
		Incremental: true,
		Relabeled:   []int{2},
		Removed:     []int{5},
		Remap:       remap,
	}
	evicted, rebased := c.applyUpdate(rep)
	if evicted != 3 || rebased != 1 {
		t.Fatalf("evicted=%d rebased=%d, want 3/1", evicted, rebased)
	}
	// {3,7} survived as {3,6} at generation 2.
	if _, hit := c.get(cacheKey([]int{3, 6}), []int{3, 6}, 2); !hit {
		t.Fatal("surviving entry not reachable under remapped indices at the new generation")
	}
	// The relabeled and removed events are gone.
	if _, hit := c.get(cacheKey([]int{0, 2}), []int{0, 2}, 2); hit {
		t.Fatal("entry containing a relabeled edge survived the sweep")
	}
	if _, hit := c.get(cacheKey([]int{5}), []int{5}, 2); hit {
		t.Fatal("entry containing a removed edge survived the sweep")
	}
}
