package serve_test

import (
	"bufio"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/serve/wire"
	"repro/internal/serve/wireclient"
)

var overloadReq = serve.ConnectedRequest{FaultEdges: []int{0}, Pairs: [][2]int{{0, 1}}}

// overloadRig is a static-scheme server on both surfaces with the
// admission gate armed.
type overloadRig struct {
	srv     *serve.Server
	ts      *httptest.Server
	binAddr string
}

func startOverloadRig(t *testing.T, maxInflight, maxConnQueue int) *overloadRig {
	t.Helper()
	sch := buildScheme(t, 24, 2, 5)
	srv := serve.New(sch, 64)
	srv.SetAdmission(maxInflight, maxConnQueue)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeBin(ln)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); ln.Close() })
	return &overloadRig{srv: srv, ts: ts, binAddr: ln.Addr().String()}
}

// TestHTTPAdmissionShed holds the single admission slot with a
// latency-failpointed probe and asserts a second concurrent probe is shed
// with 503 + Retry-After, then admitted again once the slot frees.
func TestHTTPAdmissionShed(t *testing.T) {
	defer faultinject.Disarm()
	rig := startOverloadRig(t, 1, 0)
	reg := faultinject.New(1)
	if err := reg.Set("serve.probe", "latency:150ms"); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(reg)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postConnected(t, rig.ts.URL, overloadReq)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("slot-holding probe: status %d", resp.StatusCode)
		}
	}()
	time.Sleep(30 * time.Millisecond) // the holder is inside the failpoint
	resp, _ := postConnected(t, rig.ts.URL, overloadReq)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow probe: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 shed carries no Retry-After")
	}
	wg.Wait()
	if st := rig.srv.Stats(); st.ShedHTTP != 1 {
		t.Fatalf("ShedHTTP = %d, want 1", st.ShedHTTP)
	}

	faultinject.Disarm()
	resp, _ = postConnected(t, rig.ts.URL, overloadReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-shed probe: status %d, want 200 (slot freed)", resp.StatusCode)
	}
}

// TestBinAdmissionShed fills the single admission slot from one binary
// connection (held there by the handle failpoint) and asserts a probe on
// a second connection is shed with CodeUnavailable while the connection
// survives for the retry.
func TestBinAdmissionShed(t *testing.T) {
	defer faultinject.Disarm()
	rig := startOverloadRig(t, 1, 0)
	reg := faultinject.New(2)
	if err := reg.Set("binserver.handle", "latency:150ms"); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(reg)

	cl1, err := wireclient.Dial(rig.binAddr, wireclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	cl2, err := wireclient.Dial(rig.binAddr, wireclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := cl1.Probe([]int{0}, [][2]int{{0, 1}}); err != nil {
			t.Errorf("slot-holding probe: %v", err)
		}
	}()
	time.Sleep(30 * time.Millisecond)
	_, err = cl2.Probe([]int{0}, [][2]int{{0, 1}})
	var se *wireclient.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeUnavailable {
		t.Fatalf("overflow probe err = %v, want CodeUnavailable", err)
	}
	wg.Wait()
	if st := rig.srv.Stats(); st.ShedBin < 1 {
		t.Fatalf("ShedBin = %d, want >= 1", st.ShedBin)
	}

	faultinject.Disarm()
	// Same connection, next exchange: the shed was per-frame, not fatal.
	if _, err := cl2.Probe([]int{0}, [][2]int{{0, 1}}); err != nil {
		t.Fatalf("probe after shed on same conn: %v", err)
	}
}

// TestBinDeadlineBudgetShed pipelines a budgeted probe behind a slow one,
// delivering both frames in a single write so the server's inbound buffer
// holds frame 2 while frame 1 is in service: frame 2's budget is spent
// queueing, so the server sheds it with CodeUnavailable instead of doing
// dead work, and counts it as a deadline shed.
func TestBinDeadlineBudgetShed(t *testing.T) {
	defer faultinject.Disarm()
	rig := startOverloadRig(t, 0, 0) // no admission cap: isolate the deadline path
	reg := faultinject.New(3)
	if err := reg.Set("binserver.handle", "latency:120ms"); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(reg)

	conn, err := net.Dial("tcp", rig.binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.AppendClientHello(nil)); err != nil {
		t.Fatal(err)
	}
	rd := wire.NewReader(bufio.NewReader(conn))
	hello := make([]byte, wire.ServerHelloLen)
	if _, err := io.ReadFull(conn, hello); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ParseServerHello(hello); err != nil {
		t.Fatal(err)
	}

	// Frame 1: no budget, rides out the 120ms latency. Frame 2: 10ms
	// budget, already stale by the time frame 1 finishes.
	batch := wire.AppendRequest(nil, wire.OpProbe, 1, 0, 0, []int{0}, [][2]int{{0, 1}})
	batch = wire.AppendRequest(batch, wire.OpProbe, 2, 0, 10, []int{0}, [][2]int{{0, 1}})
	if _, err := conn.Write(batch); err != nil {
		t.Fatal(err)
	}

	op, _, err := rd.Next()
	if err != nil || op != wire.OpProbeResp {
		t.Fatalf("frame 1 response: op=%#x err=%v, want OpProbeResp", op, err)
	}
	op, payload, err := rd.Next()
	if err != nil || op != wire.OpError {
		t.Fatalf("frame 2 response: op=%#x err=%v, want OpError", op, err)
	}
	id, code, _, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 || code != wire.CodeUnavailable {
		t.Fatalf("frame 2 error: id=%d code=%d, want id=2 code=503", id, code)
	}
	if st := rig.srv.Stats(); st.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
}
