package serve_test

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	ftc "repro"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/serve/genlog"
	"repro/internal/serve/wire"
	"repro/internal/workload"
)

// TestCompactionBoundsLogUnderChurn drives sustained /update churn against
// a primary with retention enabled and asserts the acceptance invariant:
// the genlog file size and in-memory record count stay bounded by the
// policy after every commit, compactions actually happen, /snapshot flips
// to serving the checkpoint, and the surface (healthz, stats, metrics)
// reports it.
func TestCompactionBoundsLogUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := startPrimary(t, workload.ErdosRenyi(70, 8.0/70, true, rng), 3)
	p.log.SetRetention(genlog.Retention{MaxRecords: 8, MinRetain: 3})

	drng := rand.New(rand.NewSource(42))
	var maxRecords int
	var maxBytes int64
	committed := 0
	for committed < 30 {
		committed += p.drift(t, drng, 1)
		st := p.log.Stats()
		if st.Records > maxRecords {
			maxRecords = st.Records
		}
		if st.FileBytes > maxBytes {
			maxBytes = st.FileBytes
		}
	}
	st := p.log.Stats()
	if maxRecords > 8 {
		t.Fatalf("in-memory window peaked at %d records post-commit, policy caps at 8", maxRecords)
	}
	if st.Compactions < 2 {
		t.Fatalf("only %d compactions across %d commits with MaxRecords 8", st.Compactions, committed)
	}
	if st.BytesReclaimed == 0 {
		t.Fatal("compactions reclaimed no bytes")
	}
	if st.CheckpointGen == 0 || st.CheckpointGen < st.FirstGen {
		t.Fatalf("checkpoint generation %d outside retained window [%d, %d]",
			st.CheckpointGen, st.FirstGen, st.LastGen)
	}

	// /snapshot now serves the checkpoint: exact Content-Length, the
	// checkpoint's generation, and a payload that decodes to that scheme.
	ck, ok := p.log.Checkpoint()
	if !ok {
		t.Fatal("no checkpoint after compactions")
	}
	resp, err := http.Get(p.ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Ftc-Generation"); got != fmt.Sprint(ck.Gen) {
		t.Fatalf("/snapshot generation header = %s, want checkpoint %d", got, ck.Gen)
	}
	if resp.ContentLength != ck.Payload || int64(len(body)) != ck.Payload {
		t.Fatalf("/snapshot length = %d (header %d), want checkpoint payload %d",
			len(body), resp.ContentLength, ck.Payload)
	}
	sc, err := core.UnmarshalScheme(body)
	if err != nil {
		t.Fatalf("checkpoint snapshot decode: %v", err)
	}
	if sc.Generation() != ck.Gen {
		t.Fatalf("checkpoint snapshot at generation %d, want %d", sc.Generation(), ck.Gen)
	}

	var h serve.Healthz
	getJSON(t, p.ts.URL+"/healthz", &h)
	if h.LogCkptGen != ck.Gen || h.LogRecords != st.Records || h.LogFirstGen != st.FirstGen {
		t.Fatalf("/healthz log surface = {ckpt %d, records %d, first %d}, want {%d, %d, %d}",
			h.LogCkptGen, h.LogRecords, h.LogFirstGen, ck.Gen, st.Records, st.FirstGen)
	}

	sst := p.srv.Stats()
	if sst.LogCompact != st.Compactions || sst.LogReclaimed != st.BytesReclaimed ||
		sst.LogCkptGen != ck.Gen || sst.LogRecords != st.Records {
		t.Fatalf("server stats %+v diverge from log stats %+v", sst, st)
	}

	mresp, err := http.Get(p.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mbody)
	for _, series := range []string{
		"ftcserve_genlog_compactions_total",
		"ftcserve_genlog_bytes_reclaimed_total",
		"ftcserve_genlog_records",
		"ftcserve_genlog_checkpoint_generation",
		"ftcserve_snapshot_stream_failures_total",
	} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("/metrics missing %s", series)
		}
	}
}

// TestCompactionFellBehindReplicaConverges is the acceptance path: a
// caught-up replica is stopped, the primary churns across multiple
// compaction boundaries (so the replica's generation falls below the
// retained window), and on restart the replica must converge to
// byte-identical labels via checkpoint fetch + CodeGone-triggered snapshot
// refetch + tail.
func TestCompactionFellBehindReplicaConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	p := startPrimary(t, workload.ErdosRenyi(70, 8.0/70, true, rng), 3)
	p.log.SetRetention(genlog.Retention{MaxRecords: 6, MinRetain: 2})
	rep := replicaFor(t, p)
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}

	drng := rand.New(rand.NewSource(52))
	p.drift(t, drng, 4)
	waitCaughtUp(t, p, rep)

	rep.Stop()
	genAtStop := rep.Scheme().Generation()
	loadsBefore := rep.Status().SnapshotLoads
	compBefore := p.log.Stats().Compactions

	// Churn until the stopped replica is strictly below the retained
	// window's coverage and at least two more compactions have run.
	for i := 0; i < 200; i++ {
		p.drift(t, drng, 2)
		st := p.log.Stats()
		if st.Compactions >= compBefore+2 && genAtStop+1 < st.FirstGen {
			break
		}
	}
	st := p.log.Stats()
	if st.Compactions < compBefore+2 || genAtStop+1 >= st.FirstGen {
		t.Fatalf("could not push replica below the window: stopped at %d, window [%d, %d], %d compactions",
			genAtStop, st.FirstGen, st.LastGen, st.Compactions)
	}

	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, rep)
	assertSchemesByteIdentical(t, p.nw.Snapshot().Inner(), rep.Scheme())
	if loads := rep.Status().SnapshotLoads; loads <= loadsBefore {
		t.Fatalf("snapshot loads %d -> %d: a replica below the retained window must refetch", loadsBefore, loads)
	}

	// The tail must be live after convergence: more churn (with more
	// compactions) still replicates.
	p.drift(t, drng, 4)
	waitCaughtUp(t, p, rep)
	assertSchemesByteIdentical(t, p.nw.Snapshot().Inner(), rep.Scheme())
}

// failingSnapScheme wraps a real scheme but fails Save mid-body, after
// some bytes are already on the wire.
type failingSnapScheme struct{ serve.Scheme }

func (f failingSnapScheme) Save(w io.Writer) error {
	if _, err := w.Write([]byte("partial snapshot bytes")); err != nil {
		return err
	}
	return errors.New("injected mid-stream failure")
}

// TestSnapshotStreamFailureNonHijacker pins the non-Hijacker abort path
// (HTTP/2-shaped): a mid-body Save failure must abort the response with
// http.ErrAbortHandler — so the client sees a broken stream, not a silent
// truncation — and must be counted in snapshot_stream_failures_total.
func TestSnapshotStreamFailureNonHijacker(t *testing.T) {
	g := workload.Grid(4, 4)
	edges := make([][2]int, g.M())
	for i, e := range g.Edges {
		edges[i] = [2]int{e.U, e.V}
	}
	nw, err := ftc.Open(g.N(), edges, ftc.WithMaxFaults(2))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(failingSnapScheme{nw.Snapshot()}, 8)

	req := httptest.NewRequest("GET", "/snapshot", nil)
	rec := httptest.NewRecorder() // not a Hijacker
	func() {
		defer func() {
			if r := recover(); r != http.ErrAbortHandler {
				t.Fatalf("handler recovered %v, want http.ErrAbortHandler", r)
			}
		}()
		srv.Handler().ServeHTTP(rec, req)
		t.Fatal("mid-stream Save failure did not abort the handler")
	}()
	if got := srv.Stats().SnapFailures; got != 1 {
		t.Fatalf("snapshot_stream_failures = %d, want 1", got)
	}

	// Over a real HTTP/1 connection the Hijacker path closes the socket:
	// the client must see an error or a short body, never a clean success.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/snapshot")
	if err == nil {
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatal("truncated snapshot read cleanly over HTTP/1 — client cannot detect the failure")
		}
	}
	if got := srv.Stats().SnapFailures; got != 2 {
		t.Fatalf("snapshot_stream_failures = %d, want 2", got)
	}
}

// TestReplicaShortSnapshotRejectedAndRetried proves the replica-side
// defense: a snapshot body that arrives truncated (but reads cleanly, as
// over a proxy that buffers a broken upstream) fails decode/verification,
// is never half-applied, and the bootstrap is retried until a good body
// converges the replica.
func TestReplicaShortSnapshotRejectedAndRetried(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	p := startPrimary(t, workload.ErdosRenyi(60, 8.0/60, true, rng), 2)

	var snapCalls atomic.Int32
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(p.ts.URL + r.URL.Path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if r.URL.Path == "/snapshot" {
			if n := snapCalls.Add(1); n == 2 {
				// The refetch: ship half the snapshot as a clean response.
				body = body[:len(body)/2]
			}
		}
		for k, vs := range resp.Header {
			if k == "Content-Length" {
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
	}))
	defer proxy.Close()

	rep, err := serve.NewReplicator(proxy.URL, serve.ReplicatorOptions{
		CacheSize:       64,
		RedialBase:      2 * time.Millisecond,
		RedialMax:       20 * time.Millisecond,
		SnapRefetchBase: 2 * time.Millisecond,
		SnapRefetchMax:  20 * time.Millisecond,
		BinAddr:         p.binLn.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Stop)
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}

	// Force a snapshot refetch with a full-rebuild marker (tree-edge
	// removal): the refetch hits the truncating proxy.
	inner := p.nw.Snapshot().Inner()
	g := inner.Graph()
	tree := -1
	for e := 0; e < g.M(); e++ {
		if inner.Forest.IsTreeEdge[e] {
			tree = e
			break
		}
	}
	if tree < 0 {
		t.Fatal("no tree edge")
	}
	if resp := p.commit(t, nil, [][2]int{{g.Edges[tree].U, g.Edges[tree].V}}); resp.Incremental {
		t.Fatal("tree-edge removal committed incrementally")
	}

	waitCaughtUp(t, p, rep)
	assertSchemesByteIdentical(t, p.nw.Snapshot().Inner(), rep.Scheme())
	if n := snapCalls.Load(); n < 3 {
		t.Fatalf("%d snapshot fetches, want ≥ 3 (bootstrap, rejected short body, retry)", n)
	}
	// The truncated body must not have been counted as an applied load.
	if loads := rep.Status().SnapshotLoads; loads != 2 {
		t.Fatalf("snapshot loads = %d, want 2 (bootstrap + one good refetch)", loads)
	}
}

// TestCompactionRefetchBackoff pins the anti-tight-loop behavior: against
// a primary whose log never covers the replica (every tail attempt ends in
// CodeGone), consecutive snapshot refetches must be paced by the refetch
// backoff, not the (fast-resetting) redial backoff.
func TestCompactionRefetchBackoff(t *testing.T) {
	// A real scheme for the snapshot endpoint.
	g := workload.Grid(4, 4)
	edges := make([][2]int, g.M())
	for i, e := range g.Edges {
		edges[i] = [2]int{e.U, e.V}
	}
	nw, err := ftc.Open(g.N(), edges, ftc.WithMaxFaults(2))
	if err != nil {
		t.Fatal(err)
	}
	snap := nw.Snapshot()

	// Fake binary listener: every OpLogSub is answered with CodeGone.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				hello := make([]byte, wire.ClientHelloLen)
				if _, err := io.ReadFull(c, hello); err != nil {
					return
				}
				if err := wire.ParseClientHello(hello); err != nil {
					return
				}
				if _, err := c.Write(wire.AppendServerHello(nil, 99)); err != nil {
					return
				}
				rd := wire.NewReader(bufio.NewReader(c))
				if _, _, err := rd.Next(); err != nil {
					return
				}
				c.Write(wire.AppendError(nil, 0, wire.CodeGone, "log starts after 99"))
			}(conn)
		}
	}()

	var snapCalls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/snapshot":
			snapCalls.Add(1)
			w.Header().Set("Content-Type", "application/octet-stream")
			if err := snap.Save(w); err != nil {
				t.Errorf("snapshot save: %v", err)
			}
		case "/healthz":
			fmt.Fprintf(w, `{"status":"ok","role":"primary","generation":1,"bin_addr":%q}`, ln.Addr().String())
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	rep, err := serve.NewReplicator(ts.URL, serve.ReplicatorOptions{
		CacheSize:       16,
		RedialBase:      time.Millisecond,
		RedialMax:       4 * time.Millisecond,
		SnapRefetchBase: 30 * time.Millisecond,
		SnapRefetchMax:  240 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Stop)
	base := snapCalls.Load() // the bootstrap fetch
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(600 * time.Millisecond)
	rep.Stop()

	got := snapCalls.Load() - base
	// Backoff schedule ~30/60/120/240/240ms (±50% jitter): ~5 refetches in
	// 600ms, ≤ 10 even at full jitter. The redial backoff alone (1-4ms)
	// would make hundreds.
	if got < 2 {
		t.Fatalf("only %d snapshot refetches in 600ms — CodeGone loop not retrying", got)
	}
	if got > 10 {
		t.Fatalf("%d snapshot refetches in 600ms — refetch backoff not applied", got)
	}
}
