package serve

import (
	"testing"

	"repro/internal/core"
)

func TestShardedCacheShapes(t *testing.T) {
	for _, tc := range []struct {
		capacity, shards int
		wantShards       int
		wantTotal        int
	}{
		{64, 4, 4, 64},
		{64, 5, 4, 64},     // non-pow2 rounds down
		{3, 8, 2, 3},       // shards clamped below capacity
		{0, 0, 1, 1},       // minimum viable cache
		{100, 64, 64, 100}, // remainder spread, total preserved
		{1024, 64, 64, 1024},
	} {
		c := newShardedCache(tc.capacity, tc.shards)
		if len(c.shards) != tc.wantShards {
			t.Errorf("newShardedCache(%d,%d): %d shards, want %d",
				tc.capacity, tc.shards, len(c.shards), tc.wantShards)
		}
		total, base := 0, c.shards[len(c.shards)-1].cap
		for i, sh := range c.shards {
			total += sh.cap
			if sh.cap != base && sh.cap != base+1 {
				t.Errorf("newShardedCache(%d,%d): shard %d capacity %d, want %d or %d",
					tc.capacity, tc.shards, i, sh.cap, base, base+1)
			}
		}
		if total != tc.wantTotal {
			t.Errorf("newShardedCache(%d,%d): total capacity %d, want %d",
				tc.capacity, tc.shards, total, tc.wantTotal)
		}
	}
	// The default shard choice must always be a power of two between 1 and
	// maxCacheShards, and small caches must collapse to the historical
	// single-lock shape.
	for _, capacity := range []int{1, 2, 8, 15, 16, 256, 4096} {
		s := defaultCacheShards(capacity)
		if s < 1 || s > maxCacheShards || s&(s-1) != 0 {
			t.Errorf("defaultCacheShards(%d) = %d, want a power of two in [1,%d]",
				capacity, s, maxCacheShards)
		}
		if capacity < 32 && s != 1 {
			t.Errorf("defaultCacheShards(%d) = %d, want 1 for small caches", capacity, s)
		}
	}
}

// TestShardedCacheRouting: entries must land in the shard their key's low
// bits select, hits must come back from the same shard, and the aggregate
// stats must equal the per-shard sums.
func TestShardedCacheRouting(t *testing.T) {
	c := newShardedCache(64, 4)
	canons := [][]int{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}}
	for _, canon := range canons {
		key := cacheKey(canon)
		if ent, hit := c.get(key, canon, 1); ent == nil || hit {
			t.Fatalf("insert of %v failed (ent=%v hit=%v)", canon, ent, hit)
		}
		if _, hit := c.get(key, canon, 1); !hit {
			t.Fatalf("repeat lookup of %v missed", canon)
		}
		// White-box: the owning shard holds the entry, the others don't.
		for i, sh := range c.shards {
			sh.mu.Lock()
			_, ok := sh.items[key]
			sh.mu.Unlock()
			if want := uint64(i) == key&c.mask; ok != want {
				t.Fatalf("canon %v (key %x): presence in shard %d = %v, want %v", canon, key, i, ok, want)
			}
		}
	}
	hits, misses, _, _, _, size, capacity, per := c.stats()
	if hits != uint64(len(canons)) || misses != uint64(len(canons)) {
		t.Fatalf("hits=%d misses=%d, want %d/%d", hits, misses, len(canons), len(canons))
	}
	if size != len(canons) || capacity != 64 {
		t.Fatalf("size=%d capacity=%d, want %d/64", size, capacity, len(canons))
	}
	var perHits, perMisses uint64
	var perSize int
	for _, p := range per {
		perHits += p.Hits
		perMisses += p.Misses
		perSize += p.Size
	}
	if perHits != hits || perMisses != misses || perSize != size {
		t.Fatalf("per-shard stats do not sum to the aggregate: %+v", per)
	}
}

// findCanonOnShard searches single-edge canonical fault sets for one whose
// key maps to the wanted shard under the given mask.
func findCanonOnShard(t *testing.T, mask, want uint64, exclude int) []int {
	t.Helper()
	for e := 0; e < 1<<16; e++ {
		if e == exclude {
			continue
		}
		if cacheKey([]int{e})&mask == want {
			return []int{e}
		}
	}
	t.Fatal("no canon found for shard")
	return nil
}

// TestShardedApplyUpdateSweep: the sharded sweep must keep the selective
// eviction semantics, and a rebased entry whose remapped key crosses
// shards must be evicted (it cannot be re-homed into a shard whose lock is
// not held), while a same-shard mover is rebased warm.
func TestShardedApplyUpdateSweep(t *testing.T) {
	c := newShardedCache(64, 2)
	mk := func(canon []int) *cacheEntry {
		ent, _ := c.get(cacheKey(canon), canon, 1)
		ent.fs = &core.FaultSet{}
		ent.compiled.Store(true)
		return ent
	}
	// One entry per shard; the remap below maps each edge e → e+1, so an
	// entry survives warm only if cacheKey({e+1}) stays on its shard.
	a := findCanonOnShard(t, c.mask, 0, -1)
	b := findCanonOnShard(t, c.mask, 1, a[0])
	mk(a)
	mk(b)
	maxE := a[0]
	if b[0] > maxE {
		maxE = b[0]
	}
	remap := make([]int, maxE+1)
	for e := range remap {
		remap[e] = e + 1
	}
	rep := &core.CommitReport{Gen: 2, Token: 7, Incremental: true, Remap: remap}
	evicted, rebased := c.applyUpdate(rep)
	if evicted+rebased != 2 {
		t.Fatalf("sweep lost entries: evicted=%d rebased=%d", evicted, rebased)
	}
	for _, canon := range [][]int{a, b} {
		moved := []int{canon[0] + 1}
		keyStays := cacheKey(moved)&c.mask == cacheKey(canon)&c.mask
		_, hit := c.get(cacheKey(moved), moved, 2)
		if hit != keyStays {
			t.Fatalf("canon %v→%v: warm=%v, want %v (same-shard=%v)", canon, moved, hit, keyStays, keyStays)
		}
	}
}
