package serve_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	ftc "repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/serve/genlog"
	"repro/internal/workload"
)

// primaryRig is a replication primary under test: a dynamic network served
// over both protocols with a generation log attached.
type primaryRig struct {
	nw    *ftc.Network
	srv   *serve.Server
	ts    *httptest.Server
	binLn net.Listener
	log   *genlog.Log
}

func startPrimary(t *testing.T, g *graph.Graph, f int) *primaryRig {
	t.Helper()
	edges := make([][2]int, g.M())
	for i, e := range g.Edges {
		edges[i] = [2]int{e.U, e.V}
	}
	nw, err := ftc.Open(g.N(), edges, ftc.WithMaxFaults(f), ftc.WithHeadroom(64))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	srv := serve.NewDynamic(func() serve.Scheme { return nw.Snapshot() }, nw, 64)
	l, err := genlog.Open(filepath.Join(t.TempDir(), "gen.log"))
	if err != nil {
		t.Fatalf("genlog: %v", err)
	}
	if err := srv.AttachGenLog(l); err != nil {
		t.Fatalf("attach genlog: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.ServeBin(ln)
	srv.SetBinAddr(ln.Addr().String())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ln.Close()
		l.Close()
	})
	return &primaryRig{nw: nw, srv: srv, ts: ts, binLn: ln, log: l}
}

// commit posts one /update batch through the primary's HTTP surface — the
// path that appends to the generation log.
func (p *primaryRig) commit(t *testing.T, add, remove [][2]int) serve.UpdateResponse {
	t.Helper()
	code, resp := postJSON[serve.UpdateResponse](t, p.ts.URL+"/update",
		serve.UpdateRequest{Add: add, Remove: remove})
	if code != http.StatusOK {
		t.Fatalf("POST /update: status %d (add=%v remove=%v)", code, add, remove)
	}
	return resp
}

// pickAddableEdge returns a non-edge whose endpoints are already connected
// (so the insertion is incremental-eligible).
func pickAddableEdge(g *graph.Graph, forest *graph.Forest, rng *rand.Rand) (int, int, bool) {
	for try := 0; try < 300; try++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v || g.HasEdge(u, v) || forest.Comp[u] != forest.Comp[v] {
			continue
		}
		return u, v, true
	}
	return 0, 0, false
}

// pickNonTreeEdge returns a random non-tree edge (whose removal is
// incremental-eligible).
func pickNonTreeEdge(g *graph.Graph, forest *graph.Forest, rng *rand.Rand) (int, int, bool) {
	for try := 0; try < 300; try++ {
		e := rng.Intn(g.M())
		if forest.IsTreeEdge[e] {
			continue
		}
		return g.Edges[e].U, g.Edges[e].V, true
	}
	return 0, 0, false
}

// drift commits rounds of small incremental-eligible batches and returns
// how many commits were made.
func (p *primaryRig) drift(t *testing.T, rng *rand.Rand, rounds int) int {
	t.Helper()
	committed := 0
	for i := 0; i < rounds; i++ {
		inner := p.nw.Snapshot().Inner()
		g, forest := inner.Graph(), inner.Forest
		var add, remove [][2]int
		if u, v, ok := pickAddableEdge(g, forest, rng); ok {
			add = append(add, [2]int{u, v})
		}
		if i%2 == 1 {
			if u, v, ok := pickNonTreeEdge(g, forest, rng); ok {
				remove = append(remove, [2]int{u, v})
			}
		}
		if len(add) == 0 && len(remove) == 0 {
			continue
		}
		p.commit(t, add, remove)
		committed++
	}
	return committed
}

// waitCaughtUp polls until the replica's generation reaches the primary's.
func waitCaughtUp(t *testing.T, p *primaryRig, r *serve.Replicator) {
	t.Helper()
	want := p.nw.Generation()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s := r.Scheme(); s != nil && s.Generation() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := r.Status()
	t.Fatalf("replica stuck at generation %d (state %q), primary at %d",
		st.LocalGen, st.State, want)
}

func replicaFor(t *testing.T, p *primaryRig) *serve.Replicator {
	t.Helper()
	r, err := serve.NewReplicator(p.ts.URL, serve.ReplicatorOptions{
		CacheSize:       64,
		RedialBase:      5 * time.Millisecond,
		RedialMax:       50 * time.Millisecond,
		SnapRefetchBase: 5 * time.Millisecond,
		SnapRefetchMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("replicator: %v", err)
	}
	t.Cleanup(r.Stop)
	return r
}

func assertSchemesByteIdentical(t *testing.T, want, got *core.Scheme) {
	t.Helper()
	if got.Token() != want.Token() || got.Generation() != want.Generation() {
		t.Fatalf("token/gen: got (%#x, %d), want (%#x, %d)",
			got.Token(), got.Generation(), want.Token(), want.Generation())
	}
	if got.N() != want.N() || got.Graph().M() != want.Graph().M() {
		t.Fatalf("shape: got (%d, %d), want (%d, %d)",
			got.N(), got.Graph().M(), want.N(), want.Graph().M())
	}
	for v := 0; v < want.N(); v++ {
		if !bytes.Equal(core.MarshalVertexLabel(got.VertexLabel(v)),
			core.MarshalVertexLabel(want.VertexLabel(v))) {
			t.Fatalf("vertex %d label bytes diverge", v)
		}
	}
	for e := 0; e < want.Graph().M(); e++ {
		if !bytes.Equal(core.MarshalEdgeLabel(got.EdgeLabel(e)),
			core.MarshalEdgeLabel(want.EdgeLabel(e))) {
			t.Fatalf("edge %d label bytes diverge", e)
		}
	}
}

// TestReplicaTailByteIdentical runs the full replication loop over three
// graph families: a replica bootstrapped from the primary's snapshot tails
// the generation log while the primary commits incremental updates, and
// after catching up its labels are byte-for-byte the primary's. Warm
// fault-set cache entries on the replica are rebased (FaultSet.Rebase)
// by the replayed deltas, and rebased entries answer exactly like the
// primary's freshly compiled ones.
func TestReplicaTailByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"erdos-renyi", workload.ErdosRenyi(90, 8.0/90, true, rng)},
		{"grid", workload.Grid(8, 10)},
		{"power-law", workload.PowerLawCluster(80, 3, 0.3, rng)},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			const f = 3
			p := startPrimary(t, fam.g, f)
			rep := replicaFor(t, p)
			if err := rep.Start(); err != nil {
				t.Fatal(err)
			}

			// Warm replica cache entries before the drift so the replayed
			// deltas exercise the rebase path, not just recompilation.
			frng := rand.New(rand.NewSource(11))
			var warmFaults [][]int
			for i := 0; i < 6; i++ {
				faults := workload.RandomFaults(rep.Scheme().Graph(), 1+frng.Intn(f), frng)
				warmFaults = append(warmFaults, faults)
				if _, _, err := rep.Server().FaultSet(faults); err != nil {
					t.Fatalf("warm probe: %v", err)
				}
			}

			drng := rand.New(rand.NewSource(13))
			if n := p.drift(t, drng, 8); n == 0 {
				t.Fatal("no drift commits made")
			}
			waitCaughtUp(t, p, rep)

			assertSchemesByteIdentical(t, p.nw.Snapshot().Inner(), rep.Scheme())

			st := rep.Status()
			if st.SnapshotLoads != 1 {
				t.Fatalf("snapshot loads = %d, want 1 (log tail only)", st.SnapshotLoads)
			}
			if st.RecordsApplied == 0 {
				t.Fatal("no log records applied")
			}
			if got := rep.Server().Stats().CacheRebased; got == 0 {
				t.Fatal("no cache entries rebased by replayed deltas")
			}

			// Every warm fault set that survived the drift (its edges may
			// have been removed) must answer identically on primary and
			// replica at the converged generation.
			g := p.nw.Snapshot().Graph()
			for _, faults := range warmFaults {
				valid := true
				for _, e := range faults {
					if e >= g.M() {
						valid = false
						break
					}
				}
				if !valid {
					continue
				}
				pfs, _, perr := p.srv.FaultSet(faults)
				rfs, _, rerr := rep.Server().FaultSet(faults)
				if (perr == nil) != (rerr == nil) {
					t.Fatalf("faults %v: primary err=%v, replica err=%v", faults, perr, rerr)
				}
				if perr != nil {
					continue
				}
				for trial := 0; trial < 20; trial++ {
					u, v := frng.Intn(g.N()), frng.Intn(g.N())
					pc, err1 := pfs.Connected(p.nw.VertexLabel(u), p.nw.VertexLabel(v))
					rc, err2 := rfs.Connected(rep.Scheme().VertexLabel(u), rep.Scheme().VertexLabel(v))
					if err1 != nil || err2 != nil {
						t.Fatalf("connected(%d,%d): %v / %v", u, v, err1, err2)
					}
					if pc != rc {
						t.Fatalf("faults %v: connected(%d,%d) primary=%v replica=%v",
							faults, u, v, pc, rc)
					}
				}
			}
		})
	}
}

// TestReplicaKillRestartCatchUp stops a caught-up replica, commits more
// generations on the primary, restarts the tail, and checks that the
// replica converges from the log alone — no snapshot refetch — with
// /healthz flipping from syncing back to ok.
func TestReplicaKillRestartCatchUp(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := startPrimary(t, workload.ErdosRenyi(70, 8.0/70, true, rng), 3)
	rep := replicaFor(t, p)
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rep.Server().Handler())
	defer rts.Close()

	drng := rand.New(rand.NewSource(22))
	p.drift(t, drng, 4)
	waitCaughtUp(t, p, rep)
	loadsBefore := rep.Status().SnapshotLoads

	// Kill the tail. The replica keeps serving its last generation.
	rep.Stop()
	genAtStop := rep.Scheme().Generation()
	if n := p.drift(t, drng, 6); n == 0 {
		t.Fatal("no drift while replica down")
	}
	if rep.Scheme().Generation() != genAtStop {
		t.Fatal("stopped replica moved generations")
	}

	var h serve.Healthz
	getJSON(t, rts.URL+"/healthz", &h)
	if h.Role != "replica" {
		t.Fatalf("role = %q, want replica", h.Role)
	}
	if h.Status != "syncing" {
		t.Fatalf("stopped lagging replica /healthz status = %q, want syncing", h.Status)
	}

	// Restart: catch-up must come from the log alone.
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, rep)
	assertSchemesByteIdentical(t, p.nw.Snapshot().Inner(), rep.Scheme())
	if loads := rep.Status().SnapshotLoads; loads != loadsBefore {
		t.Fatalf("snapshot loads %d -> %d: restart refetched a snapshot", loadsBefore, loads)
	}

	waitHealthzStatus(t, rts.URL, "ok")
}

// TestReplicaFullRebuildRefetchesSnapshot forces a full-rebuild marker
// (tree-edge removal) into the log and checks the replica recovers by
// refetching a snapshot and keeps tailing after it.
func TestReplicaFullRebuildRefetchesSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := startPrimary(t, workload.ErdosRenyi(60, 8.0/60, true, rng), 2)
	rep := replicaFor(t, p)
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}

	// Remove a tree edge: the commit falls back to a full rebuild, which
	// the log ships as a marker the replica cannot replay.
	inner := p.nw.Snapshot().Inner()
	g := inner.Graph()
	tree := -1
	for e := 0; e < g.M(); e++ {
		if inner.Forest.IsTreeEdge[e] {
			tree = e
			break
		}
	}
	if tree < 0 {
		t.Fatal("no tree edge")
	}
	resp := p.commit(t, nil, [][2]int{{g.Edges[tree].U, g.Edges[tree].V}})
	if resp.Incremental {
		t.Fatal("tree-edge removal committed incrementally")
	}

	waitCaughtUp(t, p, rep)
	assertSchemesByteIdentical(t, p.nw.Snapshot().Inner(), rep.Scheme())
	if loads := rep.Status().SnapshotLoads; loads != 2 {
		t.Fatalf("snapshot loads = %d, want 2 (bootstrap + full-rebuild refetch)", loads)
	}

	// The tail must still be live after the refetch.
	drng := rand.New(rand.NewSource(32))
	p.drift(t, drng, 3)
	waitCaughtUp(t, p, rep)
	assertSchemesByteIdentical(t, p.nw.Snapshot().Inner(), rep.Scheme())
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func waitHealthzStatus(t *testing.T, base, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		var h serve.Healthz
		getJSON(t, base+"/healthz", &h)
		last = h.Status
		if h.Status == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("/healthz status stuck at %q, want %q", last, want)
}

// TestReplicaHealthzCatchingUp checks the load-balancer contract from
// §3.16: a replica answers /healthz with 503 and catching_up=true from
// construction until its first full catch-up over the tail, and 200 with
// catching_up=false after — so fronts never route to a replica that has
// yet to converge once.
func TestReplicaHealthzCatchingUp(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := startPrimary(t, workload.ErdosRenyi(60, 8.0/60, true, rng), 2)
	rep := replicaFor(t, p)
	rts := httptest.NewServer(rep.Server().Handler())
	defer rts.Close()

	// Not yet started: never caught up, so shed health checks.
	resp, err := http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h serve.Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unstarted replica /healthz status = %d, want 503", resp.StatusCode)
	}
	if !h.CatchingUp {
		t.Fatal("unstarted replica /healthz catching_up = false, want true")
	}

	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, rep)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(rts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h serve.Healthz
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && !h.CatchingUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("caught-up replica /healthz stuck at %d catching_up=%v, want 200/false",
				resp.StatusCode, h.CatchingUp)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The latch is one-way: a replica that has converged once keeps
	// answering 200 even while temporarily behind the primary.
	rep.Stop()
	p.drift(t, rand.New(rand.NewSource(42)), 3)
	resp, err = http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h = serve.Healthz{} // catching_up is omitempty: clear the stale true
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.CatchingUp {
		t.Fatalf("lagging-but-converged replica /healthz = %d catching_up=%v, want 200/false",
			resp.StatusCode, h.CatchingUp)
	}
}
