package serve

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// cacheEntry is one compiled failure event. The FaultSet is compiled at
// most once per entry (outside the cache lock, via once), so a slow
// compile of one event never blocks probes of other events, and concurrent
// first requests for the same event share one compilation.
type cacheEntry struct {
	key   uint64
	canon []int // canonical fault edge indices, for collision detection
	once  sync.Once
	fs    *core.FaultSet
	err   error
}

// lruCache is a mutex-guarded LRU of compiled fault sets keyed by the
// canonical fault-label hash. The lock covers only map/list bookkeeping;
// compilation and probing happen outside it.
type lruCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used; values are *cacheEntry
	items  map[uint64]*list.Element
	hits   uint64
	misses uint64
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[uint64]*list.Element, capacity),
	}
}

// get returns the entry for key, inserting (and LRU-evicting) as needed.
// hit reports whether the entry already existed. A nil entry signals a key
// collision — the cached entry belongs to a different canonical fault set —
// and the caller must bypass the cache.
func (c *lruCache) get(key uint64, canon []int) (ent *cacheEntry, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		if !equalInts(ent.canon, canon) {
			// Collision bypass: count as a miss so lookups == hits+misses.
			c.misses++
			return nil, false
		}
		c.ll.MoveToFront(el)
		c.hits++
		return ent, true
	}
	c.misses++
	ent = &cacheEntry{key: key, canon: append([]int(nil), canon...)}
	c.items[key] = c.ll.PushFront(ent)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	return ent, false
}

func (c *lruCache) stats() (hits, misses uint64, size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len(), c.cap
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
