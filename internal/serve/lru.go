package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/serve/wire"
)

// cacheEntry is one compiled failure event at one scheme generation. The
// FaultSet is compiled at most once per entry (outside the cache lock, via
// once), so a slow compile of one event never blocks probes of other
// events, and concurrent first requests for the same event share one
// compilation. compiled flips after once completes; the update sweep only
// rebases entries whose compilation finished (an in-flight one is simply
// evicted and recompiled on next use).
type cacheEntry struct {
	key      uint64
	canon    []int // canonical fault edge indices, for collision detection
	gen      uint64
	once     sync.Once
	compiled atomic.Bool
	fs       *core.FaultSet
	err      error
}

// lruCache is a mutex-guarded LRU of compiled fault sets keyed by the
// canonical fault-label hash — one shard of the serving cache (see
// shardedCache). The lock covers only map/list bookkeeping; compilation
// and probing happen outside it. Entries are generation-stamped: an update
// sweep (applyUpdate) evicts exactly the entries whose fault edges were
// relabeled or removed and rebases the rest in place, keeping their warm
// closures. The counters are atomic so the stats path can aggregate across
// shards without taking every shard lock.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *cacheEntry
	items   map[uint64]*list.Element
	hits    atomic.Uint64
	misses  atomic.Uint64
	evicted atomic.Uint64 // entries dropped by update sweeps
	rebased atomic.Uint64 // entries carried across generations by update sweeps
	// capEvicted counts entries displaced by capacity pressure (the LRU
	// eviction proper, as opposed to update-sweep drops) — the signal that
	// the cache is undersized for the working set.
	capEvicted atomic.Uint64
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[uint64]*list.Element, capacity),
	}
}

// cacheKey hashes a canonical (sorted, deduplicated) fault-edge index
// slice. It delegates to the wire protocol's FaultKey, which is the
// single source of truth for this hash: the binary probe path computes
// the same value incrementally while decoding a frame, so both protocol
// surfaces address one cache with one hashing pass each.
func cacheKey(canon []int) uint64 {
	return wire.FaultKey(canon)
}

// get returns the entry for (key, canon) at generation gen, inserting (and
// LRU-evicting) as needed. hit reports whether a matching entry already
// existed. A nil entry signals a key collision — the cached entry belongs
// to a different canonical fault set — and the caller must bypass the
// cache. An entry left over from an older generation (possible only when a
// probe raced an update sweep) is replaced, not returned.
func (c *lruCache) get(key uint64, canon []int, gen uint64) (ent *cacheEntry, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		if !equalInts(ent.canon, canon) {
			// Collision bypass: count as a miss so lookups == hits+misses.
			c.misses.Add(1)
			return nil, false
		}
		if ent.gen == gen {
			c.ll.MoveToFront(el)
			c.hits.Add(1)
			return ent, true
		}
		if ent.gen > gen {
			// The entry is newer than the caller's snapshot: a probe still
			// holding a superseded view must not evict the warm entry the
			// update sweep just rebased. Bypass the cache, like the
			// collision path.
			c.misses.Add(1)
			return nil, false
		}
		c.ll.Remove(el)
		delete(c.items, key)
	}
	c.misses.Add(1)
	ent = &cacheEntry{key: key, canon: append([]int(nil), canon...), gen: gen}
	c.items[key] = c.ll.PushFront(ent)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.capEvicted.Add(1)
	}
	return ent, false
}

// applyUpdate sweeps the cache after a committed batch: entries containing
// a relabeled or removed fault edge (or not yet compiled) are evicted;
// every other entry is remapped to post-commit edge indices and rebased to
// the new generation, keeping its compiled fragment state and closures
// warm. Returns how many entries each fate met.
//
// Probes are not serialized with updates, so the cache can hold entries
// from other generations than the one this report supersedes: an entry
// already at rep.Gen (a probe raced ahead of the sweep) is left untouched
// — its canonical indices are already post-commit, so remapping it again
// would corrupt it — and an entry at any generation other than rep.Gen-1
// is evicted, because this report says nothing about the commits it
// missed.
func (c *lruCache) applyUpdate(rep *core.CommitReport) (evicted, rebased int) {
	return c.applyUpdateSharded(rep, 0, 0)
}

// applyUpdateSharded is applyUpdate for a cache that is one shard of
// shardMask+1: a rebased entry whose remapped key hashes to a different
// shard cannot be re-homed there (that shard's lock is not held), so it is
// evicted instead — strictly less warm state than the unsharded sweep,
// never less sound. With mask 0 every key maps back to this shard and the
// behavior is exactly the historical applyUpdate.
func (c *lruCache) applyUpdateSharded(rep *core.CommitReport, shardMask, self uint64) (evicted, rebased int) {
	if rep.Incremental && len(rep.Relabeled) == 0 && len(rep.Removed) == 0 && rep.Remap == nil {
		return 0, 0 // no-op commit: no generation change, nothing to sweep
	}
	relabeled := map[int]bool{}
	for _, e := range rep.Relabeled {
		relabeled[e] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.gen == rep.Gen {
			continue
		}
		// Entries that never compiled — or compiled to an error (fs nil) —
		// carry nothing worth rebasing; recompiling on next use is cheap.
		drop := !rep.Incremental || ent.gen != rep.Gen-1 || !ent.compiled.Load() || ent.fs == nil
		canon := ent.canon
		if !drop && rep.Remap != nil {
			canon = make([]int, len(ent.canon))
			for i, e := range ent.canon {
				if e >= len(rep.Remap) || rep.Remap[e] < 0 {
					drop = true
					break
				}
				canon[i] = rep.Remap[e]
			}
		}
		if !drop {
			for _, e := range canon {
				if relabeled[e] {
					drop = true
					break
				}
			}
		}
		if drop {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			evicted++
			continue
		}
		// Clean entry: carry it into the new generation. Remapping can
		// change the key, so re-home it in the map; a collision with
		// another surviving entry is impossible (canonical index sets are
		// unique per event) but a hash collision is handled by dropping,
		// as is a remapped key that now belongs to a different shard.
		fresh := &cacheEntry{key: cacheKey(canon), canon: canon, gen: rep.Gen}
		if fresh.key&shardMask != self {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			evicted++
			continue
		}
		fresh.fs = ent.fs.Rebase(rep.Token, rep.Gen)
		fresh.err = ent.err
		fresh.once.Do(func() {}) // already compiled
		fresh.compiled.Store(true)
		delete(c.items, ent.key)
		if _, clash := c.items[fresh.key]; clash {
			c.ll.Remove(el)
			evicted++
			continue
		}
		el.Value = fresh
		c.items[fresh.key] = el
		rebased++
	}
	c.evicted.Add(uint64(evicted))
	c.rebased.Add(uint64(rebased))
	return evicted, rebased
}

func (c *lruCache) stats() (hits, misses, evicted, rebased, capEvicted uint64, size, capacity int) {
	c.mu.Lock()
	size = c.ll.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.evicted.Load(), c.rebased.Load(), c.capEvicted.Load(), size, c.cap
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
