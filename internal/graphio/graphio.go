// Package graphio reads and writes graphs and label databases in simple
// text/binary formats, so the labeling schemes can be used as standalone
// artifacts: build labels once, ship the per-vertex/per-edge files, answer
// queries anywhere.
//
// Graph text format (comments with '#', blank lines ignored):
//
//	n <vertexCount>
//	e <u> <v> [weight]
//
// Label database binary format: a small header, then length-prefixed
// marshaled labels (vertices first, then edges, in index order).
package graphio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
)

// ErrFormat is returned for malformed inputs.
var ErrFormat = errors.New("graphio: malformed input")

// ReadGraph parses the text format.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var g *graph.Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "n":
			if g != nil {
				return nil, fmt.Errorf("%w: line %d: duplicate n directive", ErrFormat, line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: n takes one argument", ErrFormat, line)
			}
			count, err := strconv.Atoi(fields[1])
			if err != nil || count < 0 {
				return nil, fmt.Errorf("%w: line %d: bad vertex count %q", ErrFormat, line, fields[1])
			}
			g = graph.New(count)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("%w: line %d: edge before n directive", ErrFormat, line)
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("%w: line %d: e takes two or three arguments", ErrFormat, line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%w: line %d: bad endpoints", ErrFormat, line)
			}
			if len(fields) == 4 {
				w, err := strconv.ParseInt(fields[3], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: bad weight %q", ErrFormat, line, fields[3])
				}
				if _, err := g.AddWeightedEdge(u, v, w); err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, line, err)
				}
			} else if _, err := g.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, line, err)
			}
		default:
			return nil, fmt.Errorf("%w: line %d: unknown directive %q", ErrFormat, line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("%w: missing n directive", ErrFormat)
	}
	return g, nil
}

// WriteGraph emits the text format.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for e, edge := range g.Edges {
		var err error
		if g.Weights != nil {
			_, err = fmt.Fprintf(bw, "e %d %d %d\n", edge.U, edge.V, g.Weight(e))
		} else {
			_, err = fmt.Fprintf(bw, "e %d %d\n", edge.U, edge.V)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

const dbMagic = "FTCLABEL1"

// WriteLabels serializes a scheme's complete label database.
func WriteLabels(w io.Writer, s *core.Scheme, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(dbMagic); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.M()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	writeBlob := func(b []byte) error {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(b)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		_, err := bw.Write(b)
		return err
	}
	for v := 0; v < g.N(); v++ {
		if err := writeBlob(core.MarshalVertexLabel(s.VertexLabel(v))); err != nil {
			return err
		}
	}
	for e := 0; e < g.M(); e++ {
		if err := writeBlob(core.MarshalEdgeLabel(s.EdgeLabel(e))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LabelDB is a loaded label database — everything a query site needs.
type LabelDB struct {
	Vertices []core.VertexLabel
	Edges    []core.EdgeLabel
}

// ReadLabels loads a label database written by WriteLabels.
func ReadLabels(r io.Reader) (*LabelDB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(dbMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrFormat, err)
	}
	if string(magic) != dbMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrFormat, err)
	}
	n := int(binary.LittleEndian.Uint64(hdr[0:]))
	m := int(binary.LittleEndian.Uint64(hdr[8:]))
	if n < 0 || m < 0 || n > 1<<30 || m > 1<<30 {
		return nil, fmt.Errorf("%w: implausible sizes n=%d m=%d", ErrFormat, n, m)
	}
	readBlob := func() ([]byte, error) {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, err
		}
		size := binary.LittleEndian.Uint32(lenBuf[:])
		if size > 1<<28 {
			return nil, fmt.Errorf("%w: blob of %d bytes", ErrFormat, size)
		}
		b := make([]byte, size)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	db := &LabelDB{
		Vertices: make([]core.VertexLabel, n),
		Edges:    make([]core.EdgeLabel, m),
	}
	for v := 0; v < n; v++ {
		blob, err := readBlob()
		if err != nil {
			return nil, fmt.Errorf("%w: vertex %d: %v", ErrFormat, v, err)
		}
		if db.Vertices[v], err = core.UnmarshalVertexLabel(blob); err != nil {
			return nil, fmt.Errorf("vertex %d: %w", v, err)
		}
	}
	for e := 0; e < m; e++ {
		blob, err := readBlob()
		if err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrFormat, e, err)
		}
		if db.Edges[e], err = core.UnmarshalEdgeLabel(blob); err != nil {
			return nil, fmt.Errorf("edge %d: %w", e, err)
		}
	}
	return db, nil
}
