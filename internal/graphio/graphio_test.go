package graphio

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workload"
)

func TestReadGraphBasic(t *testing.T) {
	in := `
# a triangle with one weighted edge
n 3
e 0 1
e 1 2 7
e 0 2
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.Weight(1) != 7 || g.Weight(0) != 1 {
		t.Fatalf("weights: %d, %d", g.Weight(1), g.Weight(0))
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"edge before n":  "e 0 1\n",
		"duplicate n":    "n 3\nn 4\n",
		"bad count":      "n x\n",
		"bad endpoint":   "n 3\ne 0 q\n",
		"self loop":      "n 3\ne 1 1\n",
		"unknown":        "n 3\nz 1 2\n",
		"bad weight":     "n 3\ne 0 1 heavy\n",
		"argument count": "n 3\ne 0\n",
	}
	for name, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in)); !errors.Is(err, ErrFormat) && !errors.Is(err, graph.ErrBadEdge) {
			t.Errorf("%s: err = %v, want format error", name, err)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := workload.ErdosRenyi(30, 0.2, true, rng)
	workload.AssignRandomWeights(g, 50, rng)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip changed shape")
	}
	for e := range g.Edges {
		if back.Edges[e] != g.Edges[e] || back.Weight(e) != g.Weight(e) {
			t.Fatalf("edge %d changed", e)
		}
	}
}

func TestLabelDBRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := workload.ErdosRenyi(25, 0.2, true, rng)
	s, err := core.Build(g, core.Params{MaxFaults: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLabels(&buf, s, g); err != nil {
		t.Fatal(err)
	}
	db, err := ReadLabels(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Vertices) != g.N() || len(db.Edges) != g.M() {
		t.Fatalf("db shape %d/%d", len(db.Vertices), len(db.Edges))
	}
	// Queries through the loaded database match direct queries.
	for q := 0; q < 50; q++ {
		faults := workload.RandomFaults(g, rng.Intn(3), rng)
		sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
		fl := make([]core.EdgeLabel, len(faults))
		fl2 := make([]core.EdgeLabel, len(faults))
		for i, e := range faults {
			fl[i] = s.EdgeLabel(e)
			fl2[i] = db.Edges[e]
		}
		want, err1 := core.Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
		got, err2 := core.Connected(db.Vertices[sv], db.Vertices[tv], fl2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch: %v vs %v", err1, err2)
		}
		if err1 == nil && got != want {
			t.Fatalf("loaded labels disagree")
		}
	}
}

func TestReadLabelsRejectsGarbage(t *testing.T) {
	if _, err := ReadLabels(strings.NewReader("nope")); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: %v", err)
	}
	// Truncated database.
	rng := rand.New(rand.NewSource(3))
	g := workload.ErdosRenyi(10, 0.3, true, rng)
	s, err := core.Build(g, core.Params{MaxFaults: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLabels(&buf, s, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadLabels(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated database accepted")
	}
}
