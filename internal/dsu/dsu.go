// Package dsu implements a disjoint-set union (union–find) structure with
// union by size and path compression. It backs the fragment-merging loop of
// the fast query algorithm (paper §7.6) and the ground-truth connectivity
// checks used throughout the test suites.
package dsu

// DSU is a disjoint-set forest over the integers [0, n).
type DSU struct {
	parent []int32
	size   []int32
	sets   int
}

// New returns a DSU with n singleton sets.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int32, n),
		size:   make([]int32, n),
		sets:   n,
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// Find returns the canonical representative of x's set.
func (d *DSU) Find(x int) int {
	root := int32(x)
	for d.parent[root] != root {
		root = d.parent[root]
	}
	// Path compression.
	for int32(x) != root {
		next := d.parent[x]
		d.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false when they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := int32(d.Find(x)), int32(d.Find(y))
	if rx == ry {
		return false
	}
	if d.size[rx] < d.size[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	d.size[rx] += d.size[ry]
	d.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// SizeOf returns the size of the set containing x.
func (d *DSU) SizeOf(x int) int { return int(d.size[d.Find(x)]) }
