package dsu

import (
	"math/rand"
	"testing"
)

func TestBasicUnionFind(t *testing.T) {
	d := New(6)
	if d.Sets() != 6 {
		t.Fatalf("Sets() = %d, want 6", d.Sets())
	}
	if !d.Union(0, 1) {
		t.Fatal("Union(0,1) should merge")
	}
	if d.Union(1, 0) {
		t.Fatal("Union(1,0) should be a no-op")
	}
	d.Union(2, 3)
	d.Union(0, 3)
	if !d.Same(1, 2) {
		t.Fatal("1 and 2 should be connected via 0-1, 2-3, 0-3")
	}
	if d.Same(4, 5) {
		t.Fatal("4 and 5 should be separate")
	}
	if d.Sets() != 3 {
		t.Fatalf("Sets() = %d, want 3", d.Sets())
	}
	if d.SizeOf(1) != 4 {
		t.Fatalf("SizeOf(1) = %d, want 4", d.SizeOf(1))
	}
}

// TestAgainstNaive cross-checks a long random operation sequence against a
// quadratic reference implementation.
func TestAgainstNaive(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(7))
	d := New(n)
	ref := make([]int, n) // ref[i] = naive component id
	for i := range ref {
		ref[i] = i
	}
	relabel := func(from, to int) {
		for i := range ref {
			if ref[i] == from {
				ref[i] = to
			}
		}
	}
	for op := 0; op < 2000; op++ {
		x, y := rng.Intn(n), rng.Intn(n)
		if rng.Intn(2) == 0 {
			merged := d.Union(x, y)
			if merged != (ref[x] != ref[y]) {
				t.Fatalf("op %d: Union(%d,%d) merged=%v, ref disagrees", op, x, y, merged)
			}
			if ref[x] != ref[y] {
				relabel(ref[y], ref[x])
			}
		} else {
			if d.Same(x, y) != (ref[x] == ref[y]) {
				t.Fatalf("op %d: Same(%d,%d) disagrees with reference", op, x, y)
			}
		}
	}
}
