// Package sketch implements the randomized AGM-style graph sketch
// (Ahn–Guha–McGregor ℓ₀-sampling) that underlies the second Dory–Parter
// scheme, which this paper de-randomizes (§1.2, §4.1). It serves two roles
// in the reproduction:
//
//  1. the DP21 baseline rows of Table 1 (whp and full query support,
//     depending on the repetition count), and
//  2. a drop-in demonstration of the framework's modularity claim: the
//     deterministic Reed–Solomon outdetect and this sketch plug into the
//     identical tree-edge machinery.
//
// A sketch is a grid of Reps × Buckets cells. Each cell holds the XOR of
// (edge ID, checksum) over the boundary edges that a seed-derived hash
// subsamples at rate 2^-bucket. Cells are GF(2)-linear, so vertex sketches
// aggregate over vertex sets exactly like the deterministic ones. A cell
// that ends up holding exactly one edge is detected by its checksum; with
// high probability some cell isolates an edge whenever the boundary is
// nonempty — but only with high probability, which is precisely the
// whp-vs-deterministic gap the paper closes.
package sketch

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrDecode is returned when a nonzero sketch contains no verifiable
// singleton cell — the low-probability failure mode of the randomized
// scheme. Callers surface this as a query failure and the benchmark harness
// reports the measured failure rate.
var ErrDecode = errors.New("sketch: no cell isolates a single edge")

// Spec fixes the shape and seed of a sketch. It is embedded in edge labels
// so that the universal decoder needs no access to the construction.
type Spec struct {
	Reps    int
	Buckets int
	Seed    int64
}

// Words returns the []uint64 length of one sketch: two words per cell.
func (s Spec) Words() int { return 2 * s.Reps * s.Buckets }

// DefaultBuckets returns the sampling-level count for graphs with up to m
// edges: ⌈log₂ m⌉ + 2 so even the full edge set can be downsampled to a
// singleton.
func DefaultBuckets(m int) int {
	if m < 2 {
		m = 2
	}
	return int(math.Ceil(math.Log2(float64(m)))) + 2
}

// splitmix64 is the standard 64-bit finalizer — a fast nonlinear (over
// GF(2)) mixer. Nonlinearity matters: the checksum of an XOR of two edges
// must not equal the XOR of their checksums.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (s Spec) repSalt(rep int) uint64 {
	return splitmix64(uint64(s.Seed) ^ (0xA5A5A5A5<<16 + uint64(rep)))
}

func (s Spec) checkSalt() uint64 {
	return splitmix64(uint64(s.Seed) ^ 0xC3C3C3C3C3C3)
}

// sampledDepth returns how many buckets edge id participates in for the
// given repetition: buckets 0..depth (bucket b subsamples at rate 2^-b).
func (s Spec) sampledDepth(id uint64, rep int) int {
	h := splitmix64(id ^ s.repSalt(rep))
	d := bits.TrailingZeros64(h)
	if d >= s.Buckets {
		d = s.Buckets - 1
	}
	return d
}

func (s Spec) checksum(id uint64) uint64 { return splitmix64(id ^ s.checkSalt()) }

// cell returns the word offset of (rep, bucket).
func (s Spec) cell(rep, bucket int) int { return 2 * (rep*s.Buckets + bucket) }

// AddEdge folds edge id into the sketch cells (in place). cells must have
// length Words().
func (s Spec) AddEdge(cells []uint64, id uint64) {
	chk := s.checksum(id)
	for r := 0; r < s.Reps; r++ {
		depth := s.sampledDepth(id, r)
		for b := 0; b <= depth; b++ {
			off := s.cell(r, b)
			cells[off] ^= id
			cells[off+1] ^= chk
		}
	}
}

// Decode attempts to extract one or more boundary edge IDs from an
// aggregated sketch. A nil result with nil error means the boundary is
// empty. The returned IDs are verified singletons (checksum match plus
// membership re-check), deduplicated.
func (s Spec) Decode(cells []uint64) ([]uint64, error) {
	if len(cells) != s.Words() {
		return nil, fmt.Errorf("sketch: cell vector has %d words, spec wants %d", len(cells), s.Words())
	}
	allZero := true
	seen := map[uint64]bool{}
	var out []uint64
	for r := 0; r < s.Reps; r++ {
		for b := 0; b < s.Buckets; b++ {
			off := s.cell(r, b)
			id, chk := cells[off], cells[off+1]
			if id == 0 && chk == 0 {
				continue
			}
			allZero = false
			if id == 0 || s.checksum(id) != chk {
				continue
			}
			// A genuine singleton must actually be sampled in this
			// cell under its own hash — a strong extra filter against
			// collisions masquerading as singletons.
			if s.sampledDepth(id, r) < b {
				continue
			}
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	if allZero {
		return nil, nil
	}
	if len(out) == 0 {
		return nil, ErrDecode
	}
	return out, nil
}
