package sketch

import (
	"errors"
	"math/rand"
	"testing"
)

func spec(reps int) Spec { return Spec{Reps: reps, Buckets: DefaultBuckets(1 << 12), Seed: 42} }

func TestEmpty(t *testing.T) {
	s := spec(4)
	cells := make([]uint64, s.Words())
	ids, err := s.Decode(cells)
	if ids != nil || err != nil {
		t.Fatalf("empty: ids=%v err=%v", ids, err)
	}
}

func TestSingleEdge(t *testing.T) {
	s := spec(4)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		id := rng.Uint64() | 1
		cells := make([]uint64, s.Words())
		s.AddEdge(cells, id)
		ids, err := s.Decode(cells)
		if err != nil {
			t.Fatalf("single edge decode failed: %v", err)
		}
		found := false
		for _, got := range ids {
			if got == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge %#x not recovered, got %v", id, ids)
		}
	}
}

func TestCancellation(t *testing.T) {
	s := spec(4)
	cells := make([]uint64, s.Words())
	s.AddEdge(cells, 12345)
	s.AddEdge(cells, 12345)
	for _, w := range cells {
		if w != 0 {
			t.Fatal("double insertion must cancel to zero")
		}
	}
}

// TestManyEdgesWhpRecovery measures that decoding succeeds on large boundary
// sets nearly always and that every returned ID is a true member — the
// "whp query support" semantics of the DP21 baseline.
func TestManyEdgesWhpRecovery(t *testing.T) {
	s := spec(8)
	rng := rand.New(rand.NewSource(2))
	failures := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		truth := map[uint64]bool{}
		cells := make([]uint64, s.Words())
		count := 1 + rng.Intn(200)
		for len(truth) < count {
			id := rng.Uint64() | 1
			if truth[id] {
				continue
			}
			truth[id] = true
			s.AddEdge(cells, id)
		}
		ids, err := s.Decode(cells)
		if err != nil {
			if !errors.Is(err, ErrDecode) {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
			continue
		}
		if len(ids) == 0 {
			t.Fatal("non-error decode returned no ids")
		}
		for _, id := range ids {
			if !truth[id] {
				t.Fatalf("decode fabricated edge %#x", id)
			}
		}
	}
	if failures > trials/20 {
		t.Fatalf("failure rate too high: %d/%d", failures, trials)
	}
}

func TestLinearity(t *testing.T) {
	// sketch(A) xor sketch(B) must equal sketch(A △ B).
	s := spec(3)
	rng := rand.New(rand.NewSource(3))
	a := []uint64{rng.Uint64() | 1, rng.Uint64() | 1, rng.Uint64() | 1}
	b := []uint64{a[0], rng.Uint64() | 1} // shares a[0]
	ca := make([]uint64, s.Words())
	cb := make([]uint64, s.Words())
	cd := make([]uint64, s.Words())
	for _, id := range a {
		s.AddEdge(ca, id)
	}
	for _, id := range b {
		s.AddEdge(cb, id)
	}
	for _, id := range []uint64{a[1], a[2], b[1]} {
		s.AddEdge(cd, id)
	}
	for i := range ca {
		if ca[i]^cb[i] != cd[i] {
			t.Fatal("sketch is not XOR-linear")
		}
	}
}

func TestDecodeWrongLength(t *testing.T) {
	s := spec(2)
	if _, err := s.Decode(make([]uint64, 3)); err == nil {
		t.Fatal("wrong-length cells accepted")
	}
}

func TestSeedChangesSketch(t *testing.T) {
	a := Spec{Reps: 3, Buckets: 10, Seed: 1}
	b := Spec{Reps: 3, Buckets: 10, Seed: 2}
	ca := make([]uint64, a.Words())
	cb := make([]uint64, b.Words())
	a.AddEdge(ca, 777)
	b.AddEdge(cb, 777)
	same := true
	for i := range ca {
		if ca[i] != cb[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sketches")
	}
}

func TestDefaultBuckets(t *testing.T) {
	if DefaultBuckets(1024) != 12 {
		t.Fatalf("DefaultBuckets(1024) = %d, want 12", DefaultBuckets(1024))
	}
	if DefaultBuckets(0) < 3 {
		t.Fatal("tiny m must still give a sane bucket count")
	}
}
