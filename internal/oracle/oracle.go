// Package oracle wraps the f-FTC labeling as a centralized connectivity
// oracle for failure-prone graphs (§1.4: "any f-FTC labeling scheme is also
// usable as a centralized oracle with the space complexity of m times the
// label size"). The oracle is prepared once; thereafter any query
// (s, t, F ⊆ E, |F| ≤ f) is answered without touching the graph — the
// decoder-only property is what distinguishes it from recomputation, and
// what the Duan–Pettie line of work targets.
//
// A Recompute baseline (BFS per query) is included for the benchmark
// harness: the oracle's value shows when queries far outnumber updates or
// when the graph itself is no longer available.
package oracle

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Oracle is a prepared connectivity oracle.
type Oracle struct {
	n      int
	labels *core.Scheme
}

// New prepares an oracle for g with fault budget f using the deterministic
// scheme.
func New(g *graph.Graph, f int) (*Oracle, error) {
	s, err := core.Build(g, core.Params{MaxFaults: f})
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	return &Oracle{n: g.N(), labels: s}, nil
}

// NewWithParams prepares an oracle with explicit scheme parameters.
func NewWithParams(g *graph.Graph, p core.Params) (*Oracle, error) {
	s, err := core.Build(g, p)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	return &Oracle{n: g.N(), labels: s}, nil
}

// Connected answers an (s, t, F) query. F is a set of edge indices.
func (o *Oracle) Connected(s, t int, faults []int) (bool, error) {
	if s < 0 || t < 0 || s >= o.n || t >= o.n {
		return false, fmt.Errorf("oracle: vertex out of range")
	}
	fl := make([]core.EdgeLabel, len(faults))
	for i, e := range faults {
		fl[i] = o.labels.EdgeLabel(e)
	}
	return core.Connected(o.labels.VertexLabel(s), o.labels.VertexLabel(t), fl)
}

// ComponentsUnder returns, for a fixed fault set, a connected-component
// identifier for every vertex, computed purely through oracle queries and
// union-find (|F|+1 fragments merge in at most |F| oracle probes — this is
// the fragment-graph structure the labels encode). The identifiers are
// canonical vertex ids.
func (o *Oracle) ComponentsUnder(faults []int, probe []int) (map[int]int, error) {
	// For the vertices in probe, group them by pairwise queries against
	// the first member of each discovered group — O(|probe|·groups)
	// oracle calls, each Õ(|F|⁴).
	groups := [][]int{}
	out := make(map[int]int, len(probe))
	for _, v := range probe {
		placed := false
		for gi := range groups {
			ok, err := o.Connected(groups[gi][0], v, faults)
			if err != nil {
				return nil, err
			}
			if ok {
				groups[gi] = append(groups[gi], v)
				out[v] = groups[gi][0]
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []int{v})
			out[v] = v
		}
	}
	return out, nil
}

// SpaceBits reports the oracle's storage: the sum of all label sizes (the
// §1.4 m-times-label-size accounting).
func (o *Oracle) SpaceBits(g *graph.Graph) int {
	total := 0
	for v := 0; v < g.N(); v++ {
		total += core.VertexLabelBits(o.labels.VertexLabel(v))
	}
	for e := 0; e < g.M(); e++ {
		total += core.EdgeLabelBits(o.labels.EdgeLabel(e))
	}
	return total
}

// Recompute is the trivial baseline: answer by BFS on g − F.
type Recompute struct {
	g *graph.Graph
}

// NewRecompute wraps g.
func NewRecompute(g *graph.Graph) *Recompute { return &Recompute{g: g} }

// Connected answers by BFS.
func (r *Recompute) Connected(s, t int, faults []int) bool {
	set := make(map[int]bool, len(faults))
	for _, e := range faults {
		set[e] = true
	}
	return graph.ConnectedUnder(r.g, set, s, t)
}
