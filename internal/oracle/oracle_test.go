package oracle

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestOracleMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		g := workload.ErdosRenyi(40, 0.1, true, rng)
		const f = 3
		o, err := New(g, f)
		if err != nil {
			t.Fatal(err)
		}
		base := NewRecompute(g)
		for q := 0; q < 80; q++ {
			faults := workload.RandomFaults(g, rng.Intn(f+1), rng)
			s, d := rng.Intn(g.N()), rng.Intn(g.N())
			got, err := o.Connected(s, d, faults)
			if err != nil {
				t.Fatal(err)
			}
			if got != base.Connected(s, d, faults) {
				t.Fatalf("oracle disagrees with recompute on (%d,%d,%v)", s, d, faults)
			}
		}
	}
}

func TestOracleRandomizedVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := workload.ErdosRenyi(30, 0.15, true, rng)
	o, err := NewWithParams(g, core.Params{MaxFaults: 2, Kind: core.KindRandRS, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	base := NewRecompute(g)
	for q := 0; q < 60; q++ {
		faults := workload.RandomFaults(g, rng.Intn(3), rng)
		s, d := rng.Intn(g.N()), rng.Intn(g.N())
		got, err := o.Connected(s, d, faults)
		if err != nil {
			t.Fatal(err)
		}
		if got != base.Connected(s, d, faults) {
			t.Fatal("randomized oracle disagrees")
		}
	}
}

func TestComponentsUnder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := workload.Grid(4, 4)
	const f = 4
	o, err := New(g, f)
	if err != nil {
		t.Fatal(err)
	}
	base := NewRecompute(g)
	for trial := 0; trial < 10; trial++ {
		faults := workload.RandomFaults(g, f, rng)
		probe := rng.Perm(g.N())[:8]
		comp, err := o.ComponentsUnder(faults, probe)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range probe {
			for _, b := range probe {
				same := comp[a] == comp[b]
				want := base.Connected(a, b, faults)
				if same != want {
					t.Fatalf("components disagree for (%d,%d) under %v", a, b, faults)
				}
			}
		}
	}
}

func TestVertexRangeValidation(t *testing.T) {
	g := workload.Cycle(5)
	o, err := New(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Connected(-1, 2, nil); err == nil {
		t.Fatal("negative vertex accepted")
	}
	if _, err := o.Connected(0, 9, nil); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestSpaceBits(t *testing.T) {
	g := workload.Grid(5, 5)
	o, err := New(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	bits := o.SpaceBits(g)
	if bits <= 0 {
		t.Fatalf("space = %d", bits)
	}
	// Space should be dominated by edge labels: more than m·vertexbits.
	if bits < g.M()*96 {
		t.Fatalf("space accounting implausibly small: %d", bits)
	}
}
