// Package rs implements the paper's first key technique (§4.2, §7.4,
// Appendix B): a deterministic k-threshold outdetect labeling scheme derived
// from the parity-check matrix of a Reed–Solomon code over GF(2^64).
//
// Every edge e carries a nonzero field element α_e (its edge ID). The sketch
// of e is the vector of its first 2k powers (α_e, α_e², …, α_e^2k) — the
// row of the parity-check matrix C_2k indexed by e. The sketch of a vertex
// is the XOR (field sum) of its incident edges' sketches, so the sketch of a
// vertex set S telescopes to the power sums S_j = Σ_{e∈∂(S)} α_e^j of the
// outgoing edges. Recovering ∂(S) from those power sums is exactly syndrome
// decoding of a weight-≤k binary error vector: Berlekamp–Massey produces the
// error-locator polynomial and the Berlekamp trace algorithm finds its roots
// in time polynomial in k and the field degree — never in the (astronomical)
// codeword length, which is the property Proposition 2 requires.
//
// The prefix property of Proposition 6 (Appendix B) holds by construction:
// the first 2k′ coordinates of a 2k-sketch are precisely the 2k′-sketch, so
// decoding can adapt its budget to the actual cut size.
package rs

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/gf"
)

// ErrOverload is returned when the syndrome does not correspond to any edge
// set of size at most the decoding budget. Per Proposition 2 the decoder's
// output is unspecified when |∂(S)| exceeds the threshold; this
// implementation detects (rather than silently mis-reports) that case by
// re-encoding verification.
var ErrOverload = errors.New("rs: syndrome is not a consistent ≤k-edge sketch")

// Sketch is the power-sum syndrome vector of an edge set. Sketch[j] holds
// S_{j+1} = Σ_e α_e^{j+1}. The zero value (or any all-zero vector) encodes
// the empty edge set. Sketches of equal length form a GF(2)-linear space
// under XOR, which is what lets vertex labels aggregate over any vertex set.
type Sketch []uint64

// NewSketch returns an all-zero sketch with threshold k (length 2k).
func NewSketch(k int) Sketch { return make(Sketch, 2*k) }

// K returns the threshold the sketch was sized for.
func (s Sketch) K() int { return len(s) / 2 }

// AddEdge folds edge ID alpha into the sketch. alpha must be nonzero; a zero
// ID would be indistinguishable from absence.
func (s Sketch) AddEdge(alpha uint64) {
	PowerSums(s, alpha)
}

// PowerSums XORs the first len(dst) power sums of alpha — the Reed–Solomon
// parity-check row (α, α², …, α^len(dst)) — into dst. This is the batched
// accumulation kernel: the window table of α is built once (gf.Table) and
// reused across the whole Horner chain, instead of once per gf.Mul. A zero
// alpha is a no-op, matching the AddEdge contract that IDs are nonzero.
func PowerSums(dst []uint64, alpha uint64) {
	if alpha == 0 {
		return
	}
	tab := gf.NewTable(alpha)
	pow := alpha
	for j := range dst {
		dst[j] ^= pow
		pow = tab.Mul(pow)
	}
}

// PowerRow overwrites dst with the full parity-check row: dst[j] = α^(j+1).
// Unlike PowerSums it owns dst, which lets it use the Frobenius shortcut:
// odd exponents come from a Horner chain in α² (one cached-table product
// each) and even exponents are squares of already-computed entries (Sqr is
// several times cheaper than a product). This is the construction-arena
// kernel of core.Build — len(dst)/2 products + len(dst)/2 squarings instead
// of len(dst) products.
func PowerRow(dst []uint64, alpha uint64) {
	if len(dst) == 0 {
		return
	}
	if alpha == 0 {
		clear(dst)
		return
	}
	dst[0] = alpha
	if len(dst) == 1 {
		return
	}
	a2 := gf.Sqr(alpha)
	dst[1] = a2
	tab := gf.NewTable(a2)
	pow := alpha
	for j := 2; j < len(dst); j += 2 {
		pow = tab.Mul(pow) // α^(j+1) = α^(j-1)·α², odd exponents
		dst[j] = pow
	}
	for j := 3; j < len(dst); j += 2 {
		dst[j] = gf.Sqr(dst[(j-1)/2]) // α^(j+1) = (α^((j+1)/2))², even exponents
	}
}

// Xor folds another sketch of the same length into s. Adding a sketch twice
// cancels it — that cancellation is the telescoping at the heart of the
// scheme.
func (s Sketch) Xor(o Sketch) {
	if len(o) != len(s) {
		panic(fmt.Sprintf("rs: sketch length mismatch %d vs %d", len(s), len(o)))
	}
	for i, v := range o {
		s[i] ^= v
	}
}

// Clone returns an independent copy.
func (s Sketch) Clone() Sketch {
	c := make(Sketch, len(s))
	copy(c, s)
	return c
}

// IsZero reports whether every syndrome is zero (the sketch of the empty
// set; also the sketch of any set whose characteristic vector happens to be
// a codeword, which requires weight ≥ 2k+1 and is therefore impossible under
// the threshold guarantee).
func (s Sketch) IsZero() bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}

// Decode recovers the edge IDs whose sketch equals s, assuming at most
// budget of them. budget ≤ K(); budget < K() performs adaptive prefix
// decoding (Appendix B): only the first 2·budget syndromes drive the
// decoder, but the full vector is still used for verification. Returns the
// sorted edge IDs, a nil slice for the empty set, or ErrOverload.
func (s Sketch) Decode(budget int) ([]uint64, error) {
	if budget > s.K() {
		budget = s.K()
	}
	if budget <= 0 {
		if s.IsZero() {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: zero budget with nonzero syndrome", ErrOverload)
	}
	if s.IsZero() {
		return nil, nil
	}
	locator := berlekampMassey(s[:2*budget])
	t := locator.Deg()
	if t == 0 || t > budget {
		return nil, fmt.Errorf("%w: locator degree %d outside (0,%d]", ErrOverload, t, budget)
	}
	roots, ok := findRoots(locator)
	if !ok || len(roots) != t {
		return nil, fmt.Errorf("%w: locator does not split into %d distinct nonzero roots", ErrOverload, t)
	}
	ids := make([]uint64, 0, t)
	for _, r := range roots {
		// Roots of the locator are the inverses of the edge IDs.
		ids = append(ids, gf.Inv(r))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Re-encoding verification against the FULL syndrome vector: the
	// decoded set must reproduce every stored power sum, not just the
	// prefix that drove Berlekamp–Massey.
	if !s.consistentWith(ids) {
		return nil, fmt.Errorf("%w: re-encoding check failed for %d candidates", ErrOverload, len(ids))
	}
	return ids, nil
}

// consistentWith checks that ids re-encode exactly to s.
func (s Sketch) consistentWith(ids []uint64) bool {
	check := make(Sketch, len(s))
	for _, id := range ids {
		if id == 0 {
			return false
		}
		check.AddEdge(id)
	}
	for i := range s {
		if check[i] != s[i] {
			return false
		}
	}
	return true
}

// berlekampMassey returns the minimal connection polynomial
// Λ(x) = 1 + λ₁x + … + λ_t x^t of the syndrome sequence: the unique monic
// (constant term 1) polynomial of minimal degree with
// Σ_i Λ_i · S_{j-i} = 0 for all j > t. For syndromes that are power sums of
// t ≤ len(syn)/2 distinct points, Λ's roots are the points' inverses.
func berlekampMassey(syn []uint64) gf.Poly {
	c := gf.Poly{1} // current connection polynomial
	b := gf.Poly{1} // previous connection polynomial
	var l int       // current LFSR length
	var m = 1       // steps since last length change
	var bDelta uint64 = 1
	for n := 0; n < len(syn); n++ {
		// Discrepancy d = S_n + Σ_{i=1..l} c_i S_{n-i}.
		d := syn[n]
		for i := 1; i <= l && i < len(c); i++ {
			d ^= gf.Mul(c[i], syn[n-i])
		}
		if d == 0 {
			m++
			continue
		}
		coef := gf.Mul(d, gf.Inv(bDelta))
		// c' = c - coef · x^m · b
		shifted := make(gf.Poly, len(b)+m)
		for i, bc := range b {
			shifted[i+m] = gf.Mul(coef, bc)
		}
		next := gf.PolyAdd(c, shifted)
		if 2*l <= n {
			b = c
			bDelta = d
			l = n + 1 - l
			m = 1
		} else {
			m++
		}
		c = next
	}
	return gf.PolyTrim(c)
}

// findRoots returns all distinct roots of p in GF(2^64) via the Berlekamp
// trace algorithm, reporting ok=false if p does not split into distinct
// nonzero linear factors (which signals an inconsistent syndrome).
func findRoots(p gf.Poly) ([]uint64, bool) {
	p = gf.PolyMonic(p)
	if p.Deg() < 1 {
		return nil, false
	}
	// A locator with constant term 0 has root 0 ⇒ some edge ID would be
	// "infinite"; invalid.
	if p[0] == 0 {
		return nil, false
	}
	var roots []uint64
	pending := []gf.Poly{p}
	for basis := 0; basis < 64 && len(pending) > 0; basis++ {
		beta := uint64(1) << uint(basis)
		var next []gf.Poly
		for _, q := range pending {
			if q.Deg() == 1 {
				roots = append(roots, rootOfLinear(q))
				continue
			}
			tr := traceMap(beta, q)
			d := gf.PolyGCD(q, tr)
			if d.Deg() <= 0 || d.Deg() >= q.Deg() {
				// This basis element does not split q; try the next.
				next = append(next, q)
				continue
			}
			rest := gf.PolyMonic(gf.PolyDivExact(q, d))
			next = append(next, d, rest)
		}
		pending = next
	}
	for _, q := range pending {
		if q.Deg() == 1 {
			roots = append(roots, rootOfLinear(q))
		} else {
			// Irreducible factor of degree ≥ 2 survived all 64 basis
			// elements: p has roots outside GF(2^64) ⇒ not a valid
			// locator of field elements.
			return nil, false
		}
	}
	// Distinctness: a repeated root would mean a repeated edge ID, which
	// cannot arise from a set.
	seen := make(map[uint64]bool, len(roots))
	for _, r := range roots {
		if r == 0 || seen[r] {
			return nil, false
		}
		seen[r] = true
	}
	return roots, true
}

// rootOfLinear returns the root of the monic linear polynomial x + c.
func rootOfLinear(q gf.Poly) uint64 {
	q = gf.PolyMonic(q)
	return q[0] // x + c has root c in characteristic two
}

// traceMap computes Tr(βx) mod q = Σ_{i=0}^{63} (βx)^{2^i} mod q. Its roots
// within a factor separate elements by their GF(2)-trace along direction β.
func traceMap(beta uint64, q gf.Poly) gf.Poly {
	// term starts as βx mod q.
	term := gf.PolyMod(gf.Poly{0, beta}, q)
	acc := term.Clone()
	for i := 1; i < 64; i++ {
		term = gf.PolySqrMod(term, q)
		acc = gf.PolyAdd(acc, term)
	}
	return acc
}
