package rs

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gf"
)

// randomIDs returns count distinct nonzero edge IDs.
func randomIDs(rng *rand.Rand, count int) []uint64 {
	seen := map[uint64]bool{}
	out := make([]uint64, 0, count)
	for len(out) < count {
		id := rng.Uint64()
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

func sketchOf(k int, ids []uint64) Sketch {
	s := NewSketch(k)
	for _, id := range ids {
		s.AddEdge(id)
	}
	return s
}

func sameSet(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[uint64]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

func TestDecodeEmpty(t *testing.T) {
	s := NewSketch(4)
	ids, err := s.Decode(4)
	if err != nil || ids != nil {
		t.Fatalf("empty sketch: ids=%v err=%v", ids, err)
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for k := 1; k <= 24; k++ {
		for trial := 0; trial < 10; trial++ {
			count := 1 + rng.Intn(k)
			ids := randomIDs(rng, count)
			s := sketchOf(k, ids)
			got, err := s.Decode(k)
			if err != nil {
				t.Fatalf("k=%d count=%d: decode error: %v", k, count, err)
			}
			if !sameSet(got, ids) {
				t.Fatalf("k=%d count=%d: got %v, want %v", k, count, got, ids)
			}
		}
	}
}

func TestDecodeExactlyK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const k = 12
	ids := randomIDs(rng, k)
	s := sketchOf(k, ids)
	got, err := s.Decode(k)
	if err != nil {
		t.Fatalf("decode at capacity: %v", err)
	}
	if !sameSet(got, ids) {
		t.Fatal("decode at capacity returned wrong set")
	}
}

// TestOverloadDetected: with more than k edges the output is allowed to be
// arbitrary per Proposition 2, but this implementation must flag it (or, in
// rare aliasing cases that require weight ≥ 2k+1, return a set that
// re-encodes identically — which cannot happen for weight ≤ 2k).
func TestOverloadDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k = 6
	for trial := 0; trial < 50; trial++ {
		count := k + 1 + rng.Intn(k) // k+1 .. 2k, below the aliasing bound
		ids := randomIDs(rng, count)
		s := sketchOf(k, ids)
		got, err := s.Decode(k)
		if err == nil {
			// Any accepted answer must re-encode to the same sketch,
			// which for weight ≤ 2k distinct-from-truth sets is
			// impossible (min distance 2k+1).
			t.Fatalf("overload accepted: count=%d got=%v", count, got)
		}
		if !errors.Is(err, ErrOverload) {
			t.Fatalf("unexpected error type: %v", err)
		}
	}
}

// TestPrefixProperty verifies Proposition 6: the 2k′-prefix of a k-threshold
// sketch is exactly the k′-threshold sketch, and adaptive decoding with a
// smaller budget succeeds whenever the true set is small.
func TestPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const k = 16
	for trial := 0; trial < 20; trial++ {
		ids := randomIDs(rng, 3)
		full := sketchOf(k, ids)
		short := sketchOf(4, ids)
		for i := range short {
			if full[i] != short[i] {
				t.Fatalf("prefix property violated at coordinate %d", i)
			}
		}
		got, err := full.Decode(4)
		if err != nil {
			t.Fatalf("adaptive decode failed: %v", err)
		}
		if !sameSet(got, ids) {
			t.Fatal("adaptive decode returned wrong set")
		}
	}
}

// TestPrefixBudgetTooSmall: when the true set exceeds the adaptive budget,
// the decoder must not silently return a wrong answer.
func TestPrefixBudgetTooSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const k = 16
	for trial := 0; trial < 30; trial++ {
		ids := randomIDs(rng, 7)
		full := sketchOf(k, ids)
		got, err := full.Decode(3)
		if err == nil && !sameSet(got, ids) {
			t.Fatalf("undersized budget returned wrong set %v", got)
		}
	}
}

func TestXorCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const k = 8
	// Sketch(A) xor Sketch(B) = Sketch(A △ B).
	a := randomIDs(rng, 5)
	shared := a[:2]
	b := append([]uint64{}, shared...)
	b = append(b, randomIDs(rng, 3)...)
	sa, sb := sketchOf(k, a), sketchOf(k, b)
	sa.Xor(sb)
	var want []uint64
	want = append(want, a[2:]...)
	want = append(want, b[2:]...)
	got, err := sa.Decode(k)
	if err != nil {
		t.Fatalf("decode of symmetric difference: %v", err)
	}
	if !sameSet(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestAddEdgeTwiceCancels(t *testing.T) {
	s := NewSketch(5)
	s.AddEdge(0xABCDEF)
	s.AddEdge(0xABCDEF)
	if !s.IsZero() {
		t.Fatal("adding an edge twice must cancel")
	}
}

func TestBerlekampMasseyKnown(t *testing.T) {
	// Single edge α: syndromes α, α², …; locator must be 1 + α⁻¹·... —
	// roots of Λ are inverses of IDs, so Λ = 1 + α·x? No: root is α⁻¹,
	// Λ(x) = 1 + αx (Λ(α⁻¹) = 1 + α·α⁻¹ = 0). Verify.
	alpha := uint64(0x123456789)
	s := sketchOf(3, []uint64{alpha})
	loc := berlekampMassey(s)
	if loc.Deg() != 1 {
		t.Fatalf("locator degree = %d, want 1", loc.Deg())
	}
	if gf.PolyEval(loc, gf.Inv(alpha)) != 0 {
		t.Fatal("α⁻¹ is not a root of the locator")
	}
}

func TestFindRootsProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		roots := randomIDs(rng, 1+rng.Intn(10))
		p := gf.Poly{1}
		for _, r := range roots {
			p = gf.PolyMul(p, gf.Poly{r, 1})
		}
		got, ok := findRoots(p)
		if !ok {
			t.Fatalf("findRoots failed on split polynomial of degree %d", len(roots))
		}
		if !sameSet(got, roots) {
			t.Fatalf("got %v, want %v", got, roots)
		}
	}
}

// fieldTrace computes Tr(a) = Σ_{i<64} a^(2^i) ∈ {0, 1}.
func fieldTrace(a uint64) uint64 {
	var acc uint64
	x := a
	for i := 0; i < 64; i++ {
		acc ^= x
		x = gf.Sqr(x)
	}
	return acc
}

func TestFindRootsRejectsIrreducible(t *testing.T) {
	// x² + x + c is irreducible over GF(2^64) exactly when Tr(c) = 1.
	rng := rand.New(rand.NewSource(9))
	rejected, accepted := 0, 0
	for trial := 0; trial < 40; trial++ {
		c := rng.Uint64()
		p := gf.Poly{c, 1, 1}
		roots, ok := findRoots(p)
		if fieldTrace(c) == 1 {
			if ok {
				t.Fatalf("accepted irreducible quadratic with c=%#x, roots=%v", c, roots)
			}
			rejected++
			continue
		}
		if !ok {
			t.Fatalf("rejected reducible quadratic with c=%#x", c)
		}
		accepted++
		for _, r := range roots {
			if gf.PolyEval(p, r) != 0 {
				t.Fatalf("claimed root %#x does not vanish", r)
			}
		}
	}
	if rejected == 0 || accepted == 0 {
		t.Fatalf("degenerate sample: rejected=%d accepted=%d", rejected, accepted)
	}
}

func TestDecodeZeroBudgetNonzero(t *testing.T) {
	s := sketchOf(4, []uint64{5})
	if _, err := s.Decode(0); !errors.Is(err, ErrOverload) {
		t.Fatalf("zero budget on nonzero sketch: err = %v", err)
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, k := range []int{8, 32, 128} {
		rng := rand.New(rand.NewSource(8))
		ids := randomIDs(rng, k/2)
		s := sketchOf(k, ids)
		b.Run(benchName("k", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Decode(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestPowerKernels cross-checks the two construction kernels against the
// definitional per-step gf.Mul chain: PowerSums must XOR the row into
// existing content, PowerRow must overwrite with the exact row.
func TestPowerKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(65)
		alpha := rng.Uint64()
		if trial%10 == 0 {
			alpha = 0
		}
		want := make([]uint64, n)
		pow := alpha
		for j := range want {
			want[j] = pow
			pow = gf.Mul(pow, alpha)
		}
		if alpha == 0 {
			for j := range want {
				want[j] = 0
			}
		}

		row := make([]uint64, n)
		for j := range row {
			row[j] = rng.Uint64() // PowerRow must overwrite stale content
		}
		PowerRow(row, alpha)
		for j := range row {
			if row[j] != want[j] {
				t.Fatalf("PowerRow(α=%#x)[%d] = %#x, want %#x", alpha, j, row[j], want[j])
			}
		}

		base := make([]uint64, n)
		sum := make([]uint64, n)
		for j := range base {
			base[j] = rng.Uint64()
			sum[j] = base[j]
		}
		PowerSums(sum, alpha)
		for j := range sum {
			if sum[j] != base[j]^want[j] {
				t.Fatalf("PowerSums(α=%#x)[%d] = %#x, want %#x", alpha, j, sum[j], base[j]^want[j])
			}
		}
	}
}
