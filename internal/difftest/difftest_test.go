// Package difftest is the differential-testing layer: every scheme kind is
// checked against a naive BFS oracle (graph.ConnectedUnder) across the
// workload graph families, over thousands of seeded (graph, fault-set,
// query) triples. The labeled decoders — the compiled FaultSet fast path,
// the batch path, and the unoptimized §7.2 reference — must all agree with
// ground truth computed directly on the graph.
package difftest

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workload"
)

// family is one workload graph family, sized by a vertex budget so the
// polynomial-time det-greedy construction stays affordable.
type family struct {
	name string
	gen  func(n int, rng *rand.Rand) *graph.Graph
}

var families = []family{
	{"erdos-renyi", func(n int, rng *rand.Rand) *graph.Graph {
		return workload.ErdosRenyi(n, 8/float64(n), true, rng)
	}},
	{"grid", func(n int, rng *rand.Rand) *graph.Graph {
		w := 1
		for (w+1)*(w+1) <= n {
			w++
		}
		return workload.Grid(w, w)
	}},
	{"power-law", func(n int, rng *rand.Rand) *graph.Graph {
		return workload.PowerLawCluster(n, 3, 0.5, rng)
	}},
}

// kindCase is one scheme kind under differential test. maxN bounds the
// graph size (det-greedy's ε-net construction is polynomial); wantErrFree
// asserts that no probe may return an error (true for everything but the
// whp AGM baseline, which is allowed rare detected decode failures — never
// a wrong answer).
type kindCase struct {
	name        string
	maxN        int
	wantErrFree bool
	params      func(f int) core.Params
}

var kinds = []kindCase{
	{"det-netfind", 120, true, func(f int) core.Params {
		return core.Params{MaxFaults: f, Kind: core.KindDetNetFind}
	}},
	{"det-greedy", 40, true, func(f int) core.Params {
		return core.Params{MaxFaults: f, Kind: core.KindDetGreedy}
	}},
	{"rand-rs", 120, true, func(f int) core.Params {
		return core.Params{MaxFaults: f, Kind: core.KindRandRS, Seed: 29}
	}},
	{"agm-full", 120, false, func(f int) core.Params {
		return core.Params{MaxFaults: f, Kind: core.KindAGM, Seed: 29, AGMReps: 4 * f * 6}
	}},
}

// TestDifferentialAllKindsAllFamilies sweeps kind × family; each cell runs
// faultSetsPerCell seeded fault sets × queriesPerSet queries, so the whole
// sweep checks 4×3×40×25 = 12000 triples against the BFS oracle.
func TestDifferentialAllKindsAllFamilies(t *testing.T) {
	const (
		f                = 3
		faultSetsPerCell = 40
		queriesPerSet    = 25
	)
	for _, kc := range kinds {
		for _, fam := range families {
			t.Run(kc.name+"/"+fam.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(len(fam.name)) + int64(kc.maxN)))
				g := fam.gen(kc.maxN, rng)
				s, err := core.Build(g, kc.params(f))
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				decodeErrs := 0
				for trial := 0; trial < faultSetsPerCell; trial++ {
					var faults []int
					switch trial % 3 {
					case 0:
						faults = workload.TreeEdgeFaults(g, s.Forest, 1+rng.Intn(f), rng)
					case 1:
						faults = workload.RandomFaults(g, 1+rng.Intn(f), rng)
					default:
						faults = workload.VertexCutFaults(g, f, rng)
					}
					fl := make([]core.EdgeLabel, len(faults))
					for i, e := range faults {
						fl[i] = s.EdgeLabel(e)
					}
					fs, err := core.CompileFaults(fl)
					if err != nil {
						t.Fatalf("trial %d: compile %v: %v", trial, faults, err)
					}
					set := workload.FaultSet(faults)
					pairs := make([][2]core.VertexLabel, 0, queriesPerSet)
					want := make([]bool, 0, queriesPerSet)
					sawErr := false
					for q := 0; q < queriesPerSet; q++ {
						sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
						oracle := graph.ConnectedUnder(g, set, sv, tv)
						got, err := fs.Connected(s.VertexLabel(sv), s.VertexLabel(tv))
						if err != nil {
							if kc.wantErrFree || !errors.Is(err, core.ErrDecode) {
								t.Fatalf("trial %d (%d,%d|%v): %v", trial, sv, tv, faults, err)
							}
							sawErr = true
							continue
						}
						if got != oracle {
							t.Fatalf("trial %d (%d,%d|%v): scheme says %v, BFS oracle says %v",
								trial, sv, tv, faults, got, oracle)
						}
						pairs = append(pairs, [2]core.VertexLabel{s.VertexLabel(sv), s.VertexLabel(tv)})
						want = append(want, oracle)
						// Cross-check the unoptimized §7.2 reference decoder
						// on a subsample.
						if q == 0 {
							basic, err := core.ConnectedBasic(s.VertexLabel(sv), s.VertexLabel(tv), fl)
							if err == nil && basic != oracle {
								t.Fatalf("trial %d (%d,%d|%v): basic decoder says %v, oracle says %v",
									trial, sv, tv, faults, basic, oracle)
							}
						}
					}
					if sawErr {
						decodeErrs++
						continue
					}
					got, err := fs.ConnectedBatch(pairs)
					if err != nil {
						t.Fatalf("trial %d: batch: %v", trial, err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("trial %d: batch answer %d diverges from oracle", trial, i)
						}
					}
				}
				// The full-support AGM configuration may hit its measured
				// whp failure mode, but only rarely — and with these fixed
				// seeds any regression is deterministic, not flaky.
				if decodeErrs > faultSetsPerCell/10 {
					t.Fatalf("%d/%d fault sets hit decode failures", decodeErrs, faultSetsPerCell)
				}
			})
		}
	}
}
