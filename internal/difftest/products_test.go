package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	ftc "repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/serve"
	"repro/internal/serve/wire"
	"repro/internal/serve/wireclient"
)

// TestRoutePlanDifferential sweeps the compiled route product across the
// workload families: for seeded (fault-set, s–t) loads, the compiled
// FaultSet.RoutePlan must agree with the BFS oracle on reachability, and
// every positive plan must replay through the routing packet simulator —
// reaching the destination without ever crossing a forbidden edge.
func TestRoutePlanDifferential(t *testing.T) {
	const (
		f             = 3
		faultSets     = 30
		queriesPerSet = 10
	)
	for fi, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + fi)))
			g := fam.gen(100, rng)
			net, err := routing.Build(g, f)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			sch := net.Scheme()
			for trial := 0; trial < faultSets; trial++ {
				faults := make([]int, 1+rng.Intn(f))
				set := map[int]bool{}
				labels := make([]core.EdgeLabel, 0, len(faults))
				for i := range faults {
					faults[i] = rng.Intn(g.M())
					set[faults[i]] = true
				}
				for e := range set {
					labels = append(labels, sch.EdgeLabel(e))
				}
				fs, err := core.CompileFaults(labels)
				if err != nil {
					t.Fatalf("trial %d: compile: %v", trial, err)
				}
				forbidden := func(e int) bool { return set[e] }
				for q := 0; q < queriesPerSet; q++ {
					s, tv := rng.Intn(g.N()), rng.Intn(g.N())
					plan, ok, err := fs.RoutePlan(sch.VertexLabel(s), sch.VertexLabel(tv))
					if err != nil {
						t.Fatalf("trial %d: plan(%d,%d): %v", trial, s, tv, err)
					}
					want := graph.ConnectedUnder(g, set, s, tv)
					if ok != want {
						t.Fatalf("trial %d: plan(%d,%d) reachable=%v, oracle %v (faults %v)",
							trial, s, tv, ok, want, faults)
					}
					if !ok {
						continue
					}
					path, reached, err := net.Execute(s, tv, plan, forbidden)
					if err != nil || !reached {
						t.Fatalf("trial %d: execute(%d,%d): reached=%v err=%v (plan %v)",
							trial, s, tv, reached, err, plan)
					}
					checkRoutePath(t, g, set, path, s, tv)
				}
			}
		})
	}
}

// checkRoutePath asserts path is a real s→t walk in G − F.
func checkRoutePath(t *testing.T, g *graph.Graph, set map[int]bool, path []int, s, tv int) {
	t.Helper()
	if len(path) == 0 || path[0] != s || path[len(path)-1] != tv {
		t.Fatalf("path %v does not go %d→%d", path, s, tv)
	}
	for i := 1; i < len(path); i++ {
		e := g.EdgeIndex(path[i-1], path[i])
		if e < 0 {
			t.Fatalf("path %v uses non-edge (%d,%d)", path, path[i-1], path[i])
		}
		if set[e] {
			t.Fatalf("path %v crosses forbidden edge %d", path, e)
		}
	}
}

// TestQueryProductSurfaceEquivalence is the cross-protocol cell for the
// query products: for every workload family, /route and /vconnected on the
// JSON surface and OpRoute/OpVProbe on the binary surface of one server
// must return identical answers — and the vertex probes must match the
// BFS-on-vertex-deleted-graph oracle.
func TestQueryProductSurfaceEquivalence(t *testing.T) {
	const trials = 20
	for fi, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(200 + fi)))
			g := fam.gen(90, rng)
			maxDeg := 0
			for v := 0; v < g.N(); v++ {
				if d := g.Degree(v); d > maxDeg {
					maxDeg = d
				}
			}
			// Budget covers two failed vertices, so vertex probes exercise
			// the exact path; bigger vertex sets degrade and must still
			// agree across surfaces.
			sch, err := ftc.NewFromGraph(g, ftc.WithMaxFaults(2*maxDeg))
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			srv := serve.New(sch, 32)
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			cl := dialBin(t, srv)

			var rresp wire.RouteResp
			for trial := 0; trial < trials; trial++ {
				pairs := make([][2]int, 1+rng.Intn(8))
				for i := range pairs {
					pairs[i] = [2]int{rng.Intn(g.N()), rng.Intn(g.N())}
				}

				faults := make([]int, rng.Intn(4))
				for i := range faults {
					faults[i] = rng.Intn(g.M())
				}
				var hr serve.RouteResponse
				postProduct(t, ts.URL+"/route", serve.RouteRequest{FaultEdges: faults, Pairs: pairs}, &hr)
				if err := cl.Route(faults, pairs, &rresp, 0); err != nil {
					t.Fatalf("trial %d: bin route: %v", trial, err)
				}
				if rresp.Gen != hr.Generation || rresp.Faults != hr.Faults ||
					rresp.Approx != (hr.Confidence == serve.ConfidenceApprox) {
					t.Fatalf("trial %d: route surfaces disagree: bin %+v http %+v", trial, rresp, hr)
				}
				for i := range pairs {
					if rresp.Reachable[i] != hr.Routes[i].Reachable || !equalPath(rresp.Paths[i], hr.Routes[i].Path) {
						t.Fatalf("trial %d leg %d: bin (%v,%v) http (%v,%v)", trial, i,
							rresp.Reachable[i], rresp.Paths[i], hr.Routes[i].Reachable, hr.Routes[i].Path)
					}
				}

				verts := make([]int, 1+rng.Intn(2))
				dead := map[int]bool{}
				for i := range verts {
					verts[i] = rng.Intn(g.N())
					dead[verts[i]] = true
				}
				var hv serve.VConnectedResponse
				postProduct(t, ts.URL+"/vconnected", serve.VConnectedRequest{FaultVertices: verts, Pairs: pairs}, &hv)
				out, _, approx, gen, err := cl.VProbeInto(verts, pairs, nil, 0)
				if err != nil {
					t.Fatalf("trial %d: bin vprobe: %v", trial, err)
				}
				if gen != hv.Generation || approx != (hv.Confidence == serve.ConfidenceApprox) {
					t.Fatalf("trial %d: vprobe surfaces disagree: approx %v/%q", trial, approx, hv.Confidence)
				}
				for i, p := range pairs {
					if out[i] != hv.Connected[i] {
						t.Fatalf("trial %d pair %d: bin %v http %v", trial, i, out[i], hv.Connected[i])
					}
					if !approx {
						oracle := connectedWithoutVerts(g, dead, p[0], p[1])
						if out[i] != oracle {
							t.Fatalf("trial %d pair %d: surfaces answer %v, vertex oracle %v (dead %v)",
								trial, i, out[i], oracle, verts)
						}
					} else if out[i] && !connectedWithoutVerts(g, dead, p[0], p[1]) {
						t.Fatalf("trial %d pair %d: degraded answer unsound (dead %v)", trial, i, verts)
					}
				}
			}
		})
	}
}

// connectedWithoutVerts is the vertex-fault BFS oracle: failed endpoints
// are disconnected from everything, a failed vertex fails every incident
// edge.
func connectedWithoutVerts(g *graph.Graph, dead map[int]bool, s, t int) bool {
	if dead[s] || dead[t] {
		return false
	}
	faults := map[int]bool{}
	for v := range dead {
		for _, h := range g.Adj(v) {
			faults[h.Edge] = true
		}
	}
	return graph.ConnectedUnder(g, faults, s, t)
}

func equalPath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dialBin starts the binary listener for srv and dials it, tying both to
// test cleanup.
func dialBin(t *testing.T, srv *serve.Server) *wireclient.Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeBin(ln)
	t.Cleanup(func() {
		ln.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.ShutdownBin(ctx)
	})
	cl, err := wireclient.Dial(ln.Addr().String(), wireclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// postProduct posts one JSON request to a query-product endpoint.
func postProduct(t *testing.T, url string, req, out any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
