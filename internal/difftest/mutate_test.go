package difftest

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	ftc "repro"
	"repro/internal/graph"
	"repro/internal/workload"
)

// mutateKind is one scheme kind under mutate-then-verify test.
// wantErrFree mirrors the static sweep: every kind but the whp AGM
// baseline must answer without a single detected error.
type mutateKind struct {
	name        string
	maxN        int
	wantErrFree bool
	opts        func(f int) []ftc.Option
}

var mutateKinds = []mutateKind{
	{"det-netfind", 100, true, func(f int) []ftc.Option {
		return []ftc.Option{ftc.WithMaxFaults(f), ftc.WithDeterministic()}
	}},
	{"det-greedy", 36, true, func(f int) []ftc.Option {
		return []ftc.Option{ftc.WithMaxFaults(f), ftc.WithGreedyNet()}
	}},
	{"rand-rs", 100, true, func(f int) []ftc.Option {
		return []ftc.Option{ftc.WithMaxFaults(f), ftc.WithRandomized(29)}
	}},
	{"agm-full", 100, false, func(f int) []ftc.Option {
		return []ftc.Option{ftc.WithMaxFaults(f), ftc.WithAGM(29), ftc.WithAGMReps(4 * f * 6)}
	}},
}

// stripStamp zeroes the per-generation stamp so byte comparisons isolate
// label content.
func stripStamp(l ftc.EdgeLabel) ftc.EdgeLabel {
	l.Token, l.Gen = 0, 0
	return l
}

// TestMutateThenVerify is the dynamic-network differential sweep: for every
// scheme kind × workload family it opens a Network, drives a seeded random
// sequence of insert/delete batches through Commit, and checks every
// committed generation three ways:
//
//  1. probes answer exactly like the BFS oracle on the mutated graph,
//  2. a from-scratch ftc.New on the same graph answers identically, and
//  3. labels of clean edges (outside CommitReport.Relabeled) are
//     byte-identical across an incremental commit modulo the
//     token/generation restamp — the invariant the serving layer's
//     selective cache invalidation is built on.
func TestMutateThenVerify(t *testing.T) {
	const (
		f             = 3
		commits       = 6
		faultsPerGen  = 12
		queriesPerSet = 10
	)
	for _, kc := range mutateKinds {
		for _, fam := range families {
			t.Run(kc.name+"/"+fam.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(len(fam.name)*31 + kc.maxN)))
				g := fam.gen(kc.maxN, rng)
				edges := make([][2]int, g.M())
				for i, e := range g.Edges {
					edges[i] = [2]int{e.U, e.V}
				}
				nw, err := ftc.Open(g.N(), edges, kc.opts(f)...)
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				sawIncremental := false
				for c := 0; c < commits; c++ {
					snap := nw.Snapshot()
					before := make([][]byte, snap.M())
					for e := range before {
						before[e] = ftc.MarshalEdgeLabel(stripStamp(snap.EdgeLabelByIndex(e)))
					}
					staged := stageRandomBatch(t, nw, rng)
					if staged == 0 {
						continue
					}
					rep, err := nw.Commit()
					if err != nil {
						t.Fatalf("commit %d: %v", c, err)
					}
					cur := nw.Snapshot()
					if rep.Incremental {
						sawIncremental = true
						verifyCleanLabels(t, before, cur, rep)
					}
					verifyGeneration(t, cur, kc.opts(f), kc.wantErrFree, rng, f, faultsPerGen, queriesPerSet)
				}
				if !sawIncremental {
					t.Error("mutation sequence never exercised the incremental path")
				}
			})
		}
	}
}

// stageRandomBatch stages a small random batch of valid insertions and
// deletions; returns how many mutations were staged.
func stageRandomBatch(t *testing.T, nw *ftc.Network, rng *rand.Rand) int {
	t.Helper()
	g := nw.Snapshot().Graph()
	n := g.N()
	staged := 0
	for want := 1 + rng.Intn(3); staged < want; {
		if rng.Intn(2) == 0 { // insert
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if err := nw.AddEdge(u, v); err != nil {
				continue // already staged this pair
			}
		} else { // delete
			e := rng.Intn(g.M())
			if err := nw.RemoveEdge(g.Edges[e].U, g.Edges[e].V); err != nil {
				continue
			}
		}
		staged++
	}
	return staged
}

// verifyCleanLabels checks clean-edge byte stability across one
// incremental commit.
func verifyCleanLabels(t *testing.T, before [][]byte, cur *ftc.Scheme, rep *ftc.CommitReport) {
	t.Helper()
	relabeled := map[int]bool{}
	for _, e := range rep.Relabeled {
		relabeled[e] = true
	}
	for pre := range before {
		post := pre
		if rep.Remap != nil {
			post = rep.Remap[pre]
		}
		if post < 0 || relabeled[post] {
			continue
		}
		got := ftc.MarshalEdgeLabel(stripStamp(cur.EdgeLabelByIndex(post)))
		if !bytes.Equal(got, before[pre]) {
			t.Fatalf("gen %d: clean edge %d (pre %d) changed bytes across an incremental commit",
				rep.Gen, post, pre)
		}
	}
}

// verifyGeneration checks one committed generation against the BFS oracle
// and a from-scratch build. Detected decode errors are tolerated (rarely)
// only when wantErrFree is false — the whp AGM baseline — and never count
// as agreement.
func verifyGeneration(t *testing.T, cur *ftc.Scheme, opts []ftc.Option, wantErrFree bool, rng *rand.Rand, f, faultSets, queries int) {
	t.Helper()
	decodeErrs := 0
	g := cur.Graph()
	edges := make([][2]int, g.M())
	for i, e := range g.Edges {
		edges[i] = [2]int{e.U, e.V}
	}
	fresh, err := ftc.New(g.N(), edges, opts...)
	if err != nil {
		t.Fatalf("fresh build: %v", err)
	}
	for trial := 0; trial < faultSets; trial++ {
		var faults []int
		switch trial % 3 {
		case 0:
			faults = workload.TreeEdgeFaults(g, cur.Inner().Forest, 1+rng.Intn(f), rng)
		case 1:
			faults = workload.RandomFaults(g, 1+rng.Intn(f), rng)
		default:
			faults = workload.VertexCutFaults(g, f, rng)
		}
		fl := make([]ftc.EdgeLabel, len(faults))
		freshFl := make([]ftc.EdgeLabel, len(faults))
		for i, e := range faults {
			fl[i] = cur.EdgeLabelByIndex(e)
			freshFl[i] = fresh.EdgeLabelByIndex(e)
		}
		fs, err := ftc.NewFaultSet(fl)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		set := workload.FaultSet(faults)
		for q := 0; q < queries; q++ {
			sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
			want := graph.ConnectedUnder(g, set, sv, tv)
			got, err := fs.Connected(cur.VertexLabel(sv), cur.VertexLabel(tv))
			if err != nil {
				if wantErrFree || !errors.Is(err, ftc.ErrDecode) {
					t.Fatalf("trial %d (%d,%d|%v): %v", trial, sv, tv, faults, err)
				}
				decodeErrs++
				continue
			}
			if got != want {
				t.Fatalf("trial %d (%d,%d|%v): network says %v, oracle says %v",
					trial, sv, tv, faults, got, want)
			}
			freshGot, err := ftc.Connected(fresh.VertexLabel(sv), fresh.VertexLabel(tv), freshFl)
			if err != nil {
				if wantErrFree || !errors.Is(err, ftc.ErrDecode) {
					t.Fatalf("trial %d: fresh probe: %v", trial, err)
				}
				decodeErrs++
				continue
			}
			if freshGot != want {
				t.Fatalf("trial %d: fresh build diverges from oracle", trial)
			}
		}
	}
	if decodeErrs > faultSets*queries/10 {
		t.Fatalf("%d detected decode errors across %d probes", decodeErrs, faultSets*queries)
	}
}
