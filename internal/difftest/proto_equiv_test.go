package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	ftc "repro"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/serve/wireclient"
)

// TestProtocolEquivalence is the cross-protocol cell of the differential
// layer: for every scheme kind, the JSON HTTP surface and the binary frame
// surface of ONE server must return identical answers for identical seeded
// (fault-set, query-batch) loads — and both must match the BFS oracle.
// The two surfaces share the snapshot, the cache, and the compiled fault
// sets, so a divergence here means the wire codec (canonicalization,
// hashing, bitmap packing) corrupted a probe in one direction.
func TestProtocolEquivalence(t *testing.T) {
	const (
		f             = 3
		faultSets     = 25
		queriesPerSet = 16
	)
	opts := map[string]ftc.Option{
		"det-netfind": ftc.WithDeterministic(),
		"rand-rs":     ftc.WithRandomized(29),
		"agm-full":    ftc.WithAGM(29),
	}
	for name, opt := range opts {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name))))
			g := familyGraph(t, "erdos-renyi", 120, rng)
			sch, err := ftc.NewFromGraph(g, ftc.WithMaxFaults(f), opt)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			srv := serve.New(sch, 32)
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.ServeBin(ln)
			defer func() {
				ln.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				srv.ShutdownBin(ctx)
			}()
			cl, err := wireclient.Dial(ln.Addr().String(), wireclient.Options{Conns: 2, Inflight: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			for trial := 0; trial < faultSets; trial++ {
				faults := make([]int, 1+rng.Intn(f))
				for i := range faults {
					faults[i] = rng.Intn(g.M())
				}
				pairs := make([][2]int, queriesPerSet)
				for i := range pairs {
					pairs[i] = [2]int{rng.Intn(g.N()), rng.Intn(g.N())}
				}

				httpAns, httpErr := postConnectedJSON(t, ts.URL, faults, pairs)
				binAns, binErr := cl.Probe(faults, pairs)

				// The AGM kind may detect a decode failure; both surfaces
				// must then fail (same compiled fault set → same verdict),
				// never answer differently.
				if (httpErr == nil) != (binErr == nil) {
					t.Fatalf("trial %d: surfaces disagree on error: http=%v bin=%v (faults %v)",
						trial, httpErr, binErr, faults)
				}
				if httpErr != nil {
					continue
				}
				set := map[int]bool{}
				for _, e := range faults {
					set[e] = true
				}
				for i := range pairs {
					if binAns[i] != httpAns[i] {
						t.Fatalf("trial %d pair %d: bin=%v http=%v (faults %v, pair %v)",
							trial, i, binAns[i], httpAns[i], faults, pairs[i])
					}
					oracle := graph.ConnectedUnder(g, set, pairs[i][0], pairs[i][1])
					if binAns[i] != oracle {
						t.Fatalf("trial %d pair %d: both surfaces answer %v, oracle says %v (faults %v, pair %v)",
							trial, i, binAns[i], oracle, faults, pairs[i])
					}
				}
			}
		})
	}
}

// familyGraph resolves one of the workload families by name.
func familyGraph(t *testing.T, name string, n int, rng *rand.Rand) *graph.Graph {
	t.Helper()
	for _, fam := range families {
		if fam.name == name {
			return fam.gen(n, rng)
		}
	}
	t.Fatalf("unknown family %q", name)
	return nil
}

// postConnectedJSON drives the HTTP surface with fault edge indices.
func postConnectedJSON(t *testing.T, url string, faults []int, pairs [][2]int) ([]bool, error) {
	t.Helper()
	body, err := json.Marshal(serve.ConnectedRequest{FaultEdges: faults, Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/connected", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, &probeError{status: resp.StatusCode, msg: e.Error}
	}
	var out serve.ConnectedResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Connected, nil
}

type probeError struct {
	status int
	msg    string
}

func (e *probeError) Error() string { return e.msg }
