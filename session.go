package ftc

import "repro/internal/core"

// Session amortizes many connectivity probes that share one fault set — the
// common deployment pattern (one failure event, many "can I reach X?"
// probes). Building the session runs the fragment-merging query once to
// completion; each probe is then a constant-size lookup. Sessions are built
// from labels only, like every decoder-side object in this package.
type Session = core.Session

// NewSession prepares a session for the component containing anchor under
// the given fault set.
func NewSession(anchor VertexLabel, faults []EdgeLabel) (*Session, error) {
	return core.NewSession(anchor, faults)
}
