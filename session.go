package ftc

import "repro/internal/core"

// Session amortizes many connectivity probes that share one fault set — the
// common deployment pattern (one failure event, many "can I reach X?"
// probes). It is a FaultSet with every component's fragment closure forced
// eagerly, so each probe is a constant-size, allocation-free lookup.
// Sessions are built from labels only, like every decoder-side object in
// this package.
//
// Prefer FaultSet.Session, which covers every spanning-forest component the
// faults touch; NewSession is the anchor-flavored compatibility constructor.
type Session = core.Session

// NewSession prepares a session under the given fault set. The anchor pins
// the scheme token (it used to select the only component the session could
// answer for; sessions now honor faults in every component).
func NewSession(anchor VertexLabel, faults []EdgeLabel) (*Session, error) {
	return core.NewSession(anchor, faults)
}
