package ftc_test

import (
	"fmt"
	"log"

	ftc "repro"
)

// The package-level example: build labels for a 4-cycle and decide
// connectivity under two edge faults from labels alone.
func Example() {
	scheme, err := ftc.New(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
		ftc.WithMaxFaults(2))
	if err != nil {
		log.Fatal(err)
	}
	s, t := scheme.VertexLabel(0), scheme.VertexLabel(2)

	ok, err := ftc.Connected(s, t, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("no faults:", ok)

	faults := []ftc.EdgeLabel{
		scheme.MustEdgeLabel(1, 2),
		scheme.MustEdgeLabel(2, 3),
	}
	ok, err = ftc.Connected(s, t, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("both of 2's links down:", ok)
	// Output:
	// no faults: true
	// both of 2's links down: false
}

// One failure event, many probes: compile the fault labels into a FaultSet
// once and probe it repeatedly — the steady-state probe path performs no
// allocations and is safe from concurrent goroutines.
func Example_faultSet() {
	scheme, err := ftc.New(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}},
		ftc.WithMaxFaults(2))
	if err != nil {
		log.Fatal(err)
	}
	fs, err := ftc.NewFaultSet([]ftc.EdgeLabel{
		scheme.MustEdgeLabel(1, 2),
		scheme.MustEdgeLabel(3, 4),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []int{1, 2, 3, 4} {
		ok, err := fs.Connected(scheme.VertexLabel(0), scheme.VertexLabel(v))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("0 reaches %d: %v\n", v, ok)
	}
	// Output:
	// 0 reaches 1: true
	// 0 reaches 2: false
	// 0 reaches 3: false
	// 0 reaches 4: true
}

// Labels are self-contained byte strings: they can be stored or shipped and
// decoded elsewhere without the scheme object.
func Example_marshaling() {
	scheme, err := ftc.New(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, ftc.WithMaxFaults(1))
	if err != nil {
		log.Fatal(err)
	}
	wire := ftc.MarshalEdgeLabel(scheme.MustEdgeLabel(0, 1))
	back, err := ftc.UnmarshalEdgeLabel(wire)
	if err != nil {
		log.Fatal(err)
	}
	ok, err := ftc.Connected(scheme.VertexLabel(0), scheme.VertexLabel(1), []ftc.EdgeLabel{back})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("0 and 1 with their link down:", ok)
	// Output:
	// 0 and 1 with their link down: true
}

// Vertex failures reduce to edge failures (§1.4 of the paper): a vertex
// fault label bundles the incident edge labels.
func Example_vertexFaults() {
	// A star: center 0, leaves 1..3; killing the center disconnects all.
	scheme, err := ftc.New(4, [][2]int{{0, 1}, {0, 2}, {0, 3}}, ftc.WithMaxFaults(3))
	if err != nil {
		log.Fatal(err)
	}
	dead := []ftc.VertexFaultLabel{scheme.VertexFaultLabel(0)}
	ok, err := ftc.ConnectedVertexFaults(scheme.VertexLabel(1), scheme.VertexLabel(2), dead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("leaves connected with the hub dead:", ok)
	// Output:
	// leaves connected with the hub dead: false
}
