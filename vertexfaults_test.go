package ftc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// connectedWithoutVertices is the ground truth for vertex faults.
func connectedWithoutVertices(g *graph.Graph, dead map[int]bool, s, t int) bool {
	if dead[s] || dead[t] {
		return false
	}
	faults := map[int]bool{}
	for v := range dead {
		for _, h := range g.Adj(v) {
			faults[h.Edge] = true
		}
	}
	return graph.ConnectedUnder(g, faults, s, t)
}

func TestVertexFaultsVsGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		n := 18 + rng.Intn(30)
		g := workload.ErdosRenyi(n, 0.12, true, rng)
		// Budget must cover the incident edges of the failed vertices.
		maxDeg := 0
		for v := 0; v < n; v++ {
			if d := g.Degree(v); d > maxDeg {
				maxDeg = d
			}
		}
		const vf = 2
		s, err := NewFromGraph(g, WithMaxFaults(vf*maxDeg))
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 40; q++ {
			dead := map[int]bool{}
			for len(dead) < 1+rng.Intn(vf) {
				dead[rng.Intn(n)] = true
			}
			var fl []VertexFaultLabel
			for v := range dead {
				fl = append(fl, s.VertexFaultLabel(v))
			}
			sv, tv := rng.Intn(n), rng.Intn(n)
			got, err := ConnectedVertexFaults(s.VertexLabel(sv), s.VertexLabel(tv), fl)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			want := connectedWithoutVertices(g, dead, sv, tv)
			if sv == tv && !dead[sv] {
				want = true
			}
			if got != want {
				t.Fatalf("trial %d: ConnectedVertexFaults(%d,%d,dead=%v) = %v, want %v",
					trial, sv, tv, dead, got, want)
			}
		}
	}
}

func TestVertexFaultLabelBits(t *testing.T) {
	g := workload.Grid(5, 5)
	s, err := NewFromGraph(g, WithMaxFaults(8))
	if err != nil {
		t.Fatal(err)
	}
	corner := s.VertexFaultLabel(0)  // degree 2
	center := s.VertexFaultLabel(12) // degree 4
	if corner.Bits() >= center.Bits() {
		t.Fatalf("corner label %d bits should be smaller than center %d bits",
			corner.Bits(), center.Bits())
	}
	if len(center.Incident) != 4 {
		t.Fatalf("center incident edges = %d, want 4", len(center.Incident))
	}
}

func TestVertexFaultQueryEndpointDead(t *testing.T) {
	g := workload.Cycle(6)
	s, err := NewFromGraph(g, WithMaxFaults(4))
	if err != nil {
		t.Fatal(err)
	}
	fl := []VertexFaultLabel{s.VertexFaultLabel(2)}
	got, err := ConnectedVertexFaults(s.VertexLabel(2), s.VertexLabel(4), fl)
	if err != nil || got {
		t.Fatalf("dead source: got=%v err=%v", got, err)
	}
}

func TestVertexFaultBudgetOverflow(t *testing.T) {
	g := workload.Complete(8)
	s, err := NewFromGraph(g, WithMaxFaults(3))
	if err != nil {
		t.Fatal(err)
	}
	fl := []VertexFaultLabel{s.VertexFaultLabel(0)} // degree 7 > budget 3
	if _, err := ConnectedVertexFaults(s.VertexLabel(1), s.VertexLabel(2), fl); !errors.Is(err, ErrTooManyFaults) {
		t.Fatalf("err = %v, want ErrTooManyFaults", err)
	}
}

// TestVertexFaultSharedEdgeDedupe: two adjacent failed vertices share their
// common edge; the shared edge must be charged against the budget once, not
// twice. On the 5-path with hubs 1 and 2 failed, the raw incident bundles
// hold 4 labels but only 3 distinct edges — a budget of exactly 3 must
// accept the query.
func TestVertexFaultSharedEdgeDedupe(t *testing.T) {
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		if _, err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewFromGraph(g, WithMaxFaults(3))
	if err != nil {
		t.Fatal(err)
	}
	fl := []VertexFaultLabel{s.VertexFaultLabel(1), s.VertexFaultLabel(2)}
	if raw := len(fl[0].Incident) + len(fl[1].Incident); raw != 4 {
		t.Fatalf("raw incident labels = %d, want 4", raw)
	}
	vfs, err := NewVertexFaultSet(fl)
	if err != nil {
		t.Fatalf("shared incident edge double-counted against the budget: %v", err)
	}
	if vfs.Faults() != 3 {
		t.Fatalf("deduped incident edges = %d, want 3", vfs.Faults())
	}
	got, err := ConnectedVertexFaults(s.VertexLabel(0), s.VertexLabel(4), fl)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("0 and 4 must be disconnected with both middle vertices dead")
	}
}

// TestVertexFaultSetReuse: the compiled VertexFaultSet must answer exactly
// like the one-shot ConnectedVertexFaults across repeated probes.
func TestVertexFaultSetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := workload.ErdosRenyi(40, 0.12, true, rng)
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	s, err := NewFromGraph(g, WithMaxFaults(2*maxDeg))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		dead := map[int]bool{}
		for len(dead) < 2 {
			dead[rng.Intn(g.N())] = true
		}
		var fl []VertexFaultLabel
		for v := range dead {
			fl = append(fl, s.VertexFaultLabel(v))
		}
		vfs, err := NewVertexFaultSet(fl)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for q := 0; q < 80; q++ {
			sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
			got, err := vfs.Connected(s.VertexLabel(sv), s.VertexLabel(tv))
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			one, err := ConnectedVertexFaults(s.VertexLabel(sv), s.VertexLabel(tv), fl)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			want := connectedWithoutVertices(g, dead, sv, tv)
			if sv == tv && !dead[sv] {
				want = true
			}
			if got != one || got != want {
				t.Fatalf("trial %d: probe(%d,%d): set=%v one-shot=%v truth=%v",
					trial, sv, tv, got, one, want)
			}
		}
	}
}

func TestVertexFaultTokenMismatch(t *testing.T) {
	a, err := New(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(4, [][2]int{{0, 1}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	fl := []VertexFaultLabel{b.VertexFaultLabel(1)}
	if _, err := ConnectedVertexFaults(a.VertexLabel(0), a.VertexLabel(3), fl); !errors.Is(err, ErrLabelMismatch) {
		t.Fatalf("err = %v, want ErrLabelMismatch", err)
	}
}
